package distrib

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/perf"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// valFor is the deterministic "observable" of a fake task — what a real
// sweep's transmission solve would compute from (bias, k, E).
func valFor(idx int) float64 { return float64(idx)*1.5 + 0.25 }

// costFor is the fake task's flop cost, distinct per task so a merged
// total that merely looks plausible cannot pass by accident.
func costFor(idx int) int64 { return int64(idx) + 1 }

func encodeVal(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

// results accumulates restored payloads like a real plan's accumulators,
// counting restores per task to catch double-applied results.
type results struct {
	nK, nE int
	mu     sync.Mutex
	vals   []float64
	counts []int
}

func newResults(nBias, nK, nE int) *results {
	return &results{nK: nK, nE: nE, vals: make([]float64, nBias*nK*nE), counts: make([]int, nBias*nK*nE)}
}

func (r *results) flat(t cluster.Task) int { return (t.Bias*r.nK+t.K)*r.nE + t.E }

func (r *results) restore(t cluster.Task, payload []byte) error {
	if len(payload) != 8 {
		return fmt.Errorf("payload is %d bytes, want 8", len(payload))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.flat(t)
	r.vals[idx] = math.Float64frombits(binary.LittleEndian.Uint64(payload))
	r.counts[idx]++
	return nil
}

// flopMeter is a per-worker stand-in for the process-global perf
// counters: in-process tests run every worker in one process, so each
// needs private counters for the delta arithmetic to mean anything.
type flopMeter struct{ n atomic.Int64 }

func (m *flopMeter) now() perf.Snapshot { return perf.Snapshot{Flops: m.n.Load()} }

// workerFn builds a sweep function that computes valFor and meters
// costFor, with an optional per-call hook (crash/straggle behavior).
func workerFn(nK, nE int, meter *flopMeter, hook func(idx int) error) cluster.SweepFunc {
	return func(ctx context.Context, t cluster.Task) ([]byte, error) {
		idx := (t.Bias*nK+t.K)*nE + t.E
		if hook != nil {
			if err := hook(idx); err != nil {
				return nil, err
			}
		}
		if meter != nil {
			meter.n.Add(costFor(idx))
		}
		return encodeVal(valFor(idx)), nil
	}
}

// withDelay paces a hook so trivial fake tasks don't let the first
// worker drain the whole grid before the test finishes dialing the rest.
func withDelay(d time.Duration, inner func(idx int) error) func(idx int) error {
	return func(idx int) error {
		time.Sleep(d)
		if inner != nil {
			return inner(idx)
		}
		return nil
	}
}

type serveResult struct {
	rep *Report
	err error
}

func serveAsync(ctx context.Context, lis net.Listener, nBias, nK, nE int, opts Options) chan serveResult {
	ch := make(chan serveResult, 1)
	go func() {
		rep, err := Serve(ctx, lis, nBias, nK, nE, opts)
		ch <- serveResult{rep, err}
	}()
	return ch
}

func dial(t *testing.T, lb *comms.Loopback, addr string) net.Conn {
	t.Helper()
	conn, err := lb.Dial(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return conn
}

func waitServe(t *testing.T, ch chan serveResult) *Report {
	t.Helper()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Serve: %v", r.err)
		}
		return r.rep
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not finish")
		return nil
	}
}

func checkValues(t *testing.T, res *results, skip map[int]bool) {
	t.Helper()
	for idx, v := range res.vals {
		if skip[idx] {
			continue
		}
		if v != valFor(idx) {
			t.Fatalf("task %d: value %g, want %g", idx, v, valFor(idx))
		}
		if res.counts[idx] != 1 {
			t.Fatalf("task %d restored %d times, want exactly once", idx, res.counts[idx])
		}
	}
}

func serialFlops(total int, skip map[int]bool) int64 {
	var sum int64
	for idx := 0; idx < total; idx++ {
		if !skip[idx] {
			sum += costFor(idx)
		}
	}
	return sum
}

// TestDistributedMatchesLocal is the baseline: a fault-free 3-worker run
// must reproduce the serial observables bitwise, append exactly one
// journal record per task, and merge the per-worker flop deltas to the
// exact serial total.
func TestDistributedMatchesLocal(t *testing.T) {
	const nBias, nK, nE = 2, 3, 8
	total := nBias * nK * nE
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	journal := &cluster.MemJournal{}
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{
		Journal: journal,
		Restore: res.restore,
	})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		conn := dial(t, lb, "coord")
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			meter := &flopMeter{}
			err := RunWorker(context.Background(), conn, nBias, nK, nE, WorkerOptions{
				ID:      fmt.Sprintf("w%d", i),
				Pool:    sched.New(1),
				PerfNow: meter.now,
			}, workerFn(nK, nE, meter, withDelay(time.Millisecond, nil)))
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, conn)
	}
	rep := waitServe(t, ch)
	wg.Wait()

	checkValues(t, res, nil)
	// Serial reference through the local engine, compared through the same
	// payload channel (its journal) the distributed path uses.
	localJournal := &cluster.MemJournal{}
	if _, err := cluster.RunTasksResumable(context.Background(), nBias, nK, nE,
		cluster.SweepOptions{Journal: localJournal}, workerFn(nK, nE, nil, nil)); err != nil {
		t.Fatalf("local run: %v", err)
	}
	local := newResults(nBias, nK, nE)
	recs, err := localJournal.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := local.restore(cluster.TaskAt(rec.Index, nK, nE), rec.Payload); err != nil {
			t.Fatal(err)
		}
	}
	for idx := range res.vals {
		if math.Float64bits(res.vals[idx]) != math.Float64bits(local.vals[idx]) {
			t.Fatalf("task %d: distributed %x, local %x", idx,
				math.Float64bits(res.vals[idx]), math.Float64bits(local.vals[idx]))
		}
	}

	if rep.Sweep.Completed != total || rep.Sweep.Restored != 0 {
		t.Fatalf("report: %+v", rep.Sweep)
	}
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want %d", journal.Len(), total)
	}
	if rep.Workers != 3 {
		t.Fatalf("workers = %d, want 3", rep.Workers)
	}
	if want := serialFlops(total, nil); rep.Perf.Flops != want {
		t.Fatalf("merged flops = %d, serial total = %d", rep.Perf.Flops, want)
	}
}

// TestWorkerCrashRedispatch kills one worker mid-lease (it dies after two
// tasks, leaving the rest of its lease orphaned) and verifies the
// re-dispatch path: every task still completes exactly once, observables
// are bitwise-identical to a fault-free run, the journal holds exactly
// one record per task, and the merged flop count still matches serial.
func TestWorkerCrashRedispatch(t *testing.T) {
	const nBias, nK, nE = 1, 4, 12
	total := nBias * nK * nE
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	journal := &cluster.MemJournal{}
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{
		Journal: journal,
		Restore: res.restore,
	})

	// The victim leases 6 tasks, completes 2, then "dies": its connection
	// drops without a word, exactly like a kill -9 seen from the
	// coordinator's side of the socket.
	victimConn := dial(t, lb, "coord")
	victimMeter := &flopMeter{}
	var victimRuns atomic.Int64
	leased := make(chan struct{})
	var leasedOnce sync.Once
	victimHook := func(idx int) error {
		leasedOnce.Do(func() { close(leased) })
		if victimRuns.Add(1) > 2 {
			victimConn.Close()
			return errors.New("simulated kill -9")
		}
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunWorker(context.Background(), victimConn, nBias, nK, nE, WorkerOptions{
			ID: "victim", Pool: sched.New(1), Capacity: 6, PerfNow: victimMeter.now,
		}, workerFn(nK, nE, victimMeter, victimHook))
		// Since protocol v3 a hang-up before the explicit done message is a
		// crash, not a clean exit: the victim must come back with an error
		// (its own severed connection), never nil.
		if err == nil {
			t.Error("victim worker exited cleanly despite dying mid-lease")
		}
	}()
	<-leased // make sure the victim holds a lease before the survivor drains the queue

	survivorConn := dial(t, lb, "coord")
	survivorMeter := &flopMeter{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunWorker(context.Background(), survivorConn, nBias, nK, nE, WorkerOptions{
			ID: "survivor", Pool: sched.New(1), PerfNow: survivorMeter.now,
		}, workerFn(nK, nE, survivorMeter, nil))
		if err != nil {
			t.Errorf("survivor worker: %v", err)
		}
	}()

	rep := waitServe(t, ch)
	wg.Wait()

	checkValues(t, res, nil)
	if rep.Sweep.Completed != total {
		t.Fatalf("completed %d of %d", rep.Sweep.Completed, total)
	}
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want exactly %d", journal.Len(), total)
	}
	if rep.Redispatched == 0 {
		t.Fatal("no leases were re-dispatched despite a worker death")
	}
	if want := serialFlops(total, nil); rep.Perf.Flops != want {
		t.Fatalf("merged flops = %d, serial total = %d", rep.Perf.Flops, want)
	}
}

// TestStragglerRedispatch holds one task hostage on a slow worker past
// its lease deadline; the coordinator must re-dispatch it, accept the
// first result, and discard the straggler's late duplicate.
func TestStragglerRedispatch(t *testing.T) {
	const nBias, nK, nE = 1, 1, 6
	total := nBias * nK * nE
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	journal := &cluster.MemJournal{}
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{
		Journal:      journal,
		Restore:      res.restore,
		LeaseTimeout: 50 * time.Millisecond,
		RetryAfter:   10 * time.Millisecond,
	})

	started := make(chan struct{})
	var once sync.Once
	slowHook := func(idx int) error {
		if idx == 0 {
			once.Do(func() { close(started) })
			time.Sleep(400 * time.Millisecond)
		}
		return nil
	}
	slowConn := dial(t, lb, "coord")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The straggler's late result races the shutdown hang-up; either a
		// clean return or a hang-up-induced nil is acceptable, so ignore
		// the error like a real deployment's process supervisor would.
		RunWorker(context.Background(), slowConn, nBias, nK, nE, WorkerOptions{
			ID: "slow", Pool: sched.New(1), Capacity: 1,
		}, workerFn(nK, nE, nil, slowHook))
	}()
	<-started

	fastConn := dial(t, lb, "coord")
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(context.Background(), fastConn, nBias, nK, nE, WorkerOptions{
			ID: "fast", Pool: sched.New(1),
		}, workerFn(nK, nE, nil, nil))
	}()

	rep := waitServe(t, ch)
	wg.Wait()

	checkValues(t, res, nil)
	if rep.Redispatched == 0 {
		t.Fatal("straggling lease was never re-dispatched")
	}
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want exactly %d (first result wins)", journal.Len(), total)
	}
}

// TestStaleQueueEntryNotRegranted drives the lease table through the
// straggler interleaving that used to corrupt it: a lease expires and its
// tasks are re-queued, then the original holder's results arrive and win
// while the re-queued indices are still in the queue. A later grant must
// skip those stale entries — before the fix it re-leased the finished
// tasks, overwrote stateDone, and accepted their results a second time
// (duplicate journal records plus a double decrement of remaining, which
// let the run report success with tasks never executed).
func TestStaleQueueEntryNotRegranted(t *testing.T) {
	const total = 3
	journal := &cluster.MemJournal{}
	c := &coordinator{
		opts:  Options{}.withDefaults(),
		nBias: 1, nK: 1, nE: total,
		total:     total,
		st:        make([]taskState, total),
		shards:    [][]int{{0, 1, 2}},
		remaining: total,
		workers:   make(map[string]*workerState),
		done:      make(chan struct{}),
	}
	c.opts.Journal = journal
	straggler := &workerState{id: "straggler", leased: make(map[int]bool)}
	fresh := &workerState{id: "fresh", leased: make(map[int]bool)}
	c.workers[straggler.id] = straggler
	c.workers[fresh.id] = fresh

	lease, over := c.grant(straggler, 2)
	if over {
		t.Fatal("grant dismissed the straggler with tasks still pending")
	}
	if len(lease.Tasks) != 2 {
		t.Fatalf("granted %v, want 2 tasks", lease.Tasks)
	}
	// The lease expires: tasks 0 and 1 go back to the queue behind task 2.
	c.mu.Lock()
	c.reclaimExpiredLocked(time.Now().Add(2 * c.opts.LeaseTimeout))
	c.mu.Unlock()
	// The straggler reports task 0 anyway, and its result wins.
	if err := c.applyResult(straggler, resultMsg{Task: 0, Payload: encodeVal(valFor(0))}); err != nil {
		t.Fatalf("straggler result: %v", err)
	}
	// A fresh worker asks for everything: it must get tasks 2 and 1, never
	// the finished task 0 whose queue entry is now stale.
	lease, over = c.grant(fresh, total)
	if over {
		t.Fatal("grant dismissed the fresh worker with tasks still pending")
	}
	for _, idx := range lease.Tasks {
		if idx == 0 {
			t.Fatalf("grant re-leased finished task 0 (lease %v)", lease.Tasks)
		}
	}
	if len(lease.Tasks) != 2 {
		t.Fatalf("granted %v, want the 2 unfinished tasks", lease.Tasks)
	}
	c.mu.Lock()
	if c.st[0].phase != stateDone {
		t.Fatalf("task 0 phase = %d, want stateDone", c.st[0].phase)
	}
	if c.remaining != total-1 {
		t.Fatalf("remaining = %d, want %d", c.remaining, total-1)
	}
	c.mu.Unlock()
	// A late duplicate for task 0 (say the re-dispatch raced after all)
	// must be a no-op: no extra journal record, no remaining decrement.
	if err := c.applyResult(fresh, resultMsg{Task: 0, Payload: encodeVal(valFor(0))}); err != nil {
		t.Fatalf("duplicate result: %v", err)
	}
	if journal.Len() != 1 {
		t.Fatalf("journal has %d records for task 0, want exactly 1", journal.Len())
	}
	c.mu.Lock()
	if c.remaining != total-1 || c.completed != 1 {
		t.Fatalf("remaining = %d, completed = %d after duplicate, want %d and 1",
			c.remaining, c.completed, total-1)
	}
	c.mu.Unlock()
}

// TestQuarantineDistributed routes a permanently failing task through the
// worker → coordinator failure report and into the quarantined set.
func TestQuarantineDistributed(t *testing.T) {
	const nBias, nK, nE = 1, 2, 5
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{
		Restore:    res.restore,
		Quarantine: true,
	})
	badHook := func(idx int) error {
		if idx == 3 {
			return resilience.MarkPermanent(errors.New("non-finite observable"))
		}
		return nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		conn := dial(t, lb, "coord")
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			err := RunWorker(context.Background(), conn, nBias, nK, nE, WorkerOptions{
				Pool: sched.New(1),
				Retry: resilience.Policy{
					MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
				},
			}, workerFn(nK, nE, nil, withDelay(time.Millisecond, badHook)))
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		}(conn)
	}
	rep := waitServe(t, ch)
	wg.Wait()

	if len(rep.Sweep.Quarantined) != 1 {
		t.Fatalf("quarantined %v, want exactly task 3", rep.Sweep.Quarantined)
	}
	q := rep.Sweep.Quarantined[0]
	if got := (q.Bias*nK+q.K)*nE + q.E; got != 3 {
		t.Fatalf("quarantined task %d, want 3", got)
	}
	checkValues(t, res, map[int]bool{3: true})
}

// TestResumeFromJournal seeds the coordinator's journal with a partial
// previous run; the new run must restore those tasks without re-leasing
// them and complete only the remainder.
func TestResumeFromJournal(t *testing.T) {
	const nBias, nK, nE = 1, 3, 4
	total := nBias * nK * nE
	journal := &cluster.MemJournal{}
	for idx := 0; idx < 5; idx++ {
		if err := journal.Append(cluster.TaskRecord{Index: idx, Payload: encodeVal(valFor(idx))}); err != nil {
			t.Fatal(err)
		}
	}
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{
		Journal: journal,
		Restore: res.restore,
	})
	var ran atomic.Int64
	countHook := func(idx int) error {
		if idx < 5 {
			t.Errorf("journaled task %d was re-executed", idx)
		}
		ran.Add(1)
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunWorker(context.Background(), dial(t, lb, "coord"), nBias, nK, nE,
			WorkerOptions{Pool: sched.New(1)}, workerFn(nK, nE, nil, countHook))
		if err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	rep := waitServe(t, ch)
	wg.Wait()

	checkValues(t, res, nil)
	if rep.Sweep.Restored != 5 || rep.Sweep.Completed != total-5 {
		t.Fatalf("restored %d / completed %d, want 5 / %d", rep.Sweep.Restored, rep.Sweep.Completed, total-5)
	}
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want %d", journal.Len(), total)
	}
	if int(ran.Load()) != total-5 {
		t.Fatalf("worker executed %d tasks, want %d", ran.Load(), total-5)
	}
}

// TestFaultInjectionDistributed runs the deterministic failure drill
// through the distributed path: injected faults are retried worker-side
// and the observables still match exactly.
func TestFaultInjectionDistributed(t *testing.T) {
	const nBias, nK, nE = 1, 2, 10
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{Restore: res.restore})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		conn := dial(t, lb, "coord")
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			err := RunWorker(context.Background(), conn, nBias, nK, nE, WorkerOptions{
				Pool: sched.New(1),
				Retry: resilience.Policy{
					MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
				},
				Injector: &resilience.Injector{Seed: 42, Rate: 0.5},
			}, workerFn(nK, nE, nil, withDelay(time.Millisecond, nil)))
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		}(conn)
	}
	rep := waitServe(t, ch)
	wg.Wait()

	checkValues(t, res, nil)
	if rep.Sweep.Retries == 0 {
		t.Fatal("a 50% fault rate produced zero retries")
	}
}

// TestRejectGridMismatch: a worker configured for a different task grid
// must be turned away with a reason, and the sweep must still complete
// with a correctly configured worker.
func TestRejectGridMismatch(t *testing.T) {
	const nBias, nK, nE = 1, 1, 3
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{Restore: res.restore})

	err = RunWorker(context.Background(), dial(t, lb, "coord"), nBias, nK, nE+7,
		WorkerOptions{Pool: sched.New(1)}, workerFn(nK, nE+7, nil, nil))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("mismatch")) {
		t.Fatalf("mismatched worker error = %v, want grid-mismatch rejection", err)
	}

	goodConn := dial(t, lb, "coord")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(context.Background(), goodConn, nBias, nK, nE,
			WorkerOptions{Pool: sched.New(1)}, workerFn(nK, nE, nil, nil)); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	waitServe(t, ch)
	wg.Wait()
	checkValues(t, res, nil)
}

// TestRejectProtoMismatch speaks a wrong protocol version at the raw
// codec level and expects a typed rejection frame.
func TestRejectProtoMismatch(t *testing.T) {
	const nBias, nK, nE = 1, 1, 2
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{Restore: res.restore})

	cd := comms.NewCodec(dial(t, lb, "coord"))
	if err := cd.Send(msgHello, helloMsg{ID: "old", Proto: ProtoVersion + 1, NBias: nBias, NK: nK, NE: nE}); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := cd.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if mt != msgError {
		t.Fatalf("reply type = %d, want msgError", mt)
	}
	var e errorMsg
	if err := decode(mt, payload, &e); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(e.Reason), []byte("version")) {
		t.Fatalf("rejection reason %q does not mention the version", e.Reason)
	}
	cd.Close()

	goodConn := dial(t, lb, "coord")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(context.Background(), goodConn, nBias, nK, nE,
			WorkerOptions{Pool: sched.New(1)}, workerFn(nK, nE, nil, nil)); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	waitServe(t, ch)
	wg.Wait()
	checkValues(t, res, nil)
}

// TestServeHonorsContext: canceling the coordinator's context ends the
// run with the cancellation error even with no workers connected.
func TestServeHonorsContext(t *testing.T) {
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := serveAsync(ctx, lis, 1, 1, 100, Options{})
	cancel()
	select {
	case r := <-ch:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("Serve error = %v, want context.Canceled", r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve ignored cancellation")
	}
}

// TestLateWorkerGetsDone: a worker arriving after the sweep finished is
// dismissed cleanly instead of hanging.
func TestLateWorkerGetsDone(t *testing.T) {
	const nBias, nK, nE = 1, 1, 2
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{Restore: res.restore})
	if err := RunWorker(context.Background(), dial(t, lb, "coord"), nBias, nK, nE,
		WorkerOptions{Pool: sched.New(1)}, workerFn(nK, nE, nil, nil)); err != nil {
		t.Fatalf("worker: %v", err)
	}
	waitServe(t, ch)
	// The listener is closed now; a late worker cannot even dial, which
	// is the TCP behavior too (connection refused) — RunWorker is never
	// reached. Exercise the in-run path instead: Serve with everything
	// already journaled answers the first lease request with done.
	journal := &cluster.MemJournal{}
	for idx := 0; idx < nBias*nK*nE; idx++ {
		journal.Append(cluster.TaskRecord{Index: idx, Payload: encodeVal(valFor(idx))})
	}
	lis2, err := lb.Listen("coord2")
	if err != nil {
		t.Fatal(err)
	}
	res2 := newResults(nBias, nK, nE)
	ch2 := serveAsync(context.Background(), lis2, nBias, nK, nE, Options{Journal: journal, Restore: res2.restore})
	rep := waitServe(t, ch2)
	if rep.Sweep.Restored != nBias*nK*nE {
		t.Fatalf("restored %d, want %d", rep.Sweep.Restored, nBias*nK*nE)
	}
	checkValues(t, res2, nil)
}

// TestRejectSpecMismatch: a worker whose run-spec hash disagrees with
// the coordinator's is rejected at handshake with a reason naming the
// spec — even though its grid dimensions match exactly (the case the
// dims-only check could never catch). A matching worker then finishes
// the sweep untouched.
func TestRejectSpecMismatch(t *testing.T) {
	const nBias, nK, nE = 1, 2, 3
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{
		Restore:  res.restore,
		SpecHash: "coordinator-spec-hash",
	})

	badConn := dial(t, lb, "coord")
	err = RunWorker(context.Background(), badConn, nBias, nK, nE, WorkerOptions{
		Pool:     sched.New(1),
		SpecHash: "perturbed-spec-hash",
	}, workerFn(nK, nE, nil, nil))
	if err == nil {
		t.Fatal("mismatched worker was admitted")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("spec")) {
		t.Fatalf("rejection %q does not mention the spec", err)
	}

	goodConn := dial(t, lb, "coord")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(context.Background(), goodConn, nBias, nK, nE, WorkerOptions{
			Pool:     sched.New(1),
			SpecHash: "coordinator-spec-hash",
		}, workerFn(nK, nE, nil, nil)); err != nil {
			t.Errorf("matching worker: %v", err)
		}
	}()
	waitServe(t, ch)
	wg.Wait()
	checkValues(t, res, nil)
}

// TestSpecHashUncheckedWhenAbsent pins backward compatibility inside
// the protocol: a coordinator without a spec hash admits any worker,
// and a worker without one accepts any welcome — callers that drive
// distrib without specs (these tests, mostly) keep working.
func TestSpecHashUncheckedWhenAbsent(t *testing.T) {
	const nBias, nK, nE = 1, 1, 4
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{Restore: res.restore})

	conn := dial(t, lb, "coord")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The worker declares a hash; the spec-less coordinator must not
		// reject it (it has nothing to compare against), and the worker
		// must tolerate the hashless welcome.
		if err := RunWorker(context.Background(), conn, nBias, nK, nE, WorkerOptions{
			Pool:     sched.New(1),
			SpecHash: "only-side-with-a-spec",
		}, workerFn(nK, nE, nil, nil)); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	waitServe(t, ch)
	wg.Wait()
	checkValues(t, res, nil)
}
