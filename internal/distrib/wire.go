package distrib

import (
	"fmt"
	"time"

	"repro/internal/comms"
	"repro/internal/perf"
)

// This file defines the binary payload encodings of the hot protocol
// messages — lease grants, coalesced result uploads, heartbeats — on
// top of the comms.BinWriter/BinReader primitives. The handshake and
// every cold message stay JSON (negotiation precedes format choice, and
// debuggability of rare frames is worth more than their bytes).
//
// Every binary payload opens with a one-byte payload-format version so
// the encodings can evolve without minting new frame types. Decoders
// inherit the never-panic contract from comms.BinReader and additionally
// bound every count by the bytes that remain, so a hostile count cannot
// balloon an allocation; FuzzDecodeLeaseBin and FuzzDecodeResultBatchBin
// pin both properties.

// binFormat is the payload-format version byte opening every binary
// payload.
const binFormat = 1

// Worker-side wire observability: every frame a worker sends or
// receives increments the process-global perf counters, so for
// production (out-of-process) workers the wire traffic rides the
// per-task deltas like any other counter and merges cluster-wide at the
// coordinator — visible in omend's /metrics next to the engine
// counters. The coordinator counts its own side with local atomics and
// folds them into the report (see coordinator.fill).
var (
	cWireFramesSent = perf.GetCounter("wire-frames-sent")
	cWireFramesRecv = perf.GetCounter("wire-frames-recv")
	cWireBytesSent  = perf.GetCounter("wire-bytes-sent")
	cWireBytesRecv  = perf.GetCounter("wire-bytes-recv")
)

// meterWireSend and meterWireRecv are the codec meter hooks.
func meterWireSend(frameBytes int) {
	cWireFramesSent.Add(1)
	cWireBytesSent.Add(int64(frameBytes))
}

func meterWireRecv(frameBytes int) {
	cWireFramesRecv.Add(1)
	cWireBytesRecv.Add(int64(frameBytes))
}

// checkBinFormat consumes and verifies the leading format byte.
func checkBinFormat(r *comms.BinReader, what string) error {
	if v := r.Byte(); r.Err() == nil && v != binFormat {
		return fmt.Errorf("distrib: %s: unsupported binary payload format %d (want %d)", what, v, binFormat)
	}
	return nil
}

// appendLeaseBin encodes a lease grant: TTL and back-off as uvarint
// nanoseconds, then the task batch as a first absolute index plus
// zigzag deltas — lease batches are runs of consecutive grid indices in
// the common case, so each subsequent task costs one byte.
func appendLeaseBin(w *comms.BinWriter, l leaseMsg) {
	w.Byte(binFormat)
	w.Uvarint(uint64(l.TTL))
	w.Uvarint(uint64(l.RetryAfter))
	w.Uvarint(uint64(len(l.Tasks)))
	prev := 0
	for i, task := range l.Tasks {
		if i == 0 {
			w.Uvarint(uint64(task))
		} else {
			w.Varint(int64(task - prev))
		}
		prev = task
	}
}

// decodeLeaseBin decodes a msgLeaseBin payload.
func decodeLeaseBin(p []byte) (leaseMsg, error) {
	r := comms.NewBinReader(p)
	if err := checkBinFormat(r, "lease"); err != nil {
		return leaseMsg{}, err
	}
	l := leaseMsg{
		TTL:        time.Duration(r.Uvarint()),
		RetryAfter: time.Duration(r.Uvarint()),
	}
	n := r.Int()
	if r.Err() == nil && n > r.Remaining()+1 {
		// Each task costs at least one byte (the first may cost zero only
		// when n==1 and the index is 0... it still costs one byte); a count
		// beyond the remaining payload is malformed, not worth allocating.
		return leaseMsg{}, fmt.Errorf("distrib: lease: task count %d exceeds payload", n)
	}
	if n > 0 && r.Err() == nil {
		l.Tasks = make([]int, 0, n)
		prev := 0
		for i := 0; i < n && r.Err() == nil; i++ {
			var task int
			if i == 0 {
				task = r.Int()
			} else {
				task = prev + int(r.Varint())
			}
			if task < 0 {
				return leaseMsg{}, fmt.Errorf("distrib: lease: negative task index %d", task)
			}
			l.Tasks = append(l.Tasks, task)
			prev = task
		}
	}
	if err := r.Finish(); err != nil {
		return leaseMsg{}, err
	}
	return l, nil
}

// appendHeartbeatBin encodes a liveness beacon.
func appendHeartbeatBin(w *comms.BinWriter, h heartbeatMsg) {
	w.Byte(binFormat)
	w.Uvarint(uint64(h.Running))
}

// decodeHeartbeatBin decodes a msgHeartbeatBin payload.
func decodeHeartbeatBin(p []byte) (heartbeatMsg, error) {
	r := comms.NewBinReader(p)
	if err := checkBinFormat(r, "heartbeat"); err != nil {
		return heartbeatMsg{}, err
	}
	h := heartbeatMsg{Running: r.Int()}
	if err := r.Finish(); err != nil {
		return heartbeatMsg{}, err
	}
	return h, nil
}

// result flag bits.
const resultFlagFailed = 1 << 0

// appendResultBatchBin encodes a coalesced result upload. Each item
// carries its own epoch tag and perf delta; the delta is already
// compressed at the source (Snapshot.Diff drops unchanged phases and
// counters), so the encoding only pays for what moved.
func appendResultBatchBin(w *comms.BinWriter, batch []resultMsg) {
	w.Byte(binFormat)
	w.Uvarint(uint64(len(batch)))
	for i := range batch {
		res := &batch[i]
		w.Uvarint(uint64(res.Task))
		w.Uvarint(res.Epoch)
		w.Uvarint(uint64(res.Retries))
		var flags byte
		if res.Failed {
			flags |= resultFlagFailed
		}
		w.Byte(flags)
		if res.Failed {
			w.String(res.Error)
		} else {
			w.Blob(res.Payload)
		}
		appendSnapshotBin(w, res.Perf)
	}
}

// decodeResultBatchBin decodes a msgResultBatchBin payload.
func decodeResultBatchBin(p []byte) ([]resultMsg, error) {
	r := comms.NewBinReader(p)
	if err := checkBinFormat(r, "result batch"); err != nil {
		return nil, err
	}
	n := r.Int()
	if r.Err() == nil && n > r.Remaining()/8+1 {
		// Every item costs at least eight bytes (three uvarints, a flag, a
		// length prefix, and a three-field snapshot), so a count beyond
		// remaining/8 is malformed — reject it before sizing the slice, or a
		// hostile count could balloon the allocation far past the payload.
		return nil, fmt.Errorf("distrib: result batch: count %d exceeds payload", n)
	}
	var batch []resultMsg
	if n > 0 && r.Err() == nil {
		batch = make([]resultMsg, 0, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		res := resultMsg{
			Task:    r.Int(),
			Epoch:   r.Uvarint(),
			Retries: r.Int(),
		}
		flags := r.Byte()
		res.Failed = flags&resultFlagFailed != 0
		if res.Failed {
			res.Error = r.String()
		} else {
			// Copy out of the frame buffer: results outlive the frame (the
			// coordinator journals and restores them after the handler moved
			// on to the next frame).
			if b := r.Blob(); len(b) > 0 {
				res.Payload = append([]byte(nil), b...)
			}
		}
		res.Perf = readSnapshotBin(r)
		batch = append(batch, res)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return batch, nil
}

// appendSnapshotBin encodes a perf delta: total flops, then the changed
// phases (name, calls, wall nanos, flops) and changed counters (name,
// value).
func appendSnapshotBin(w *comms.BinWriter, s perf.Snapshot) {
	w.Varint(s.Flops)
	w.Uvarint(uint64(len(s.Phases)))
	for name, ps := range s.Phases {
		w.String(name)
		w.Varint(ps.Calls)
		w.Varint(int64(ps.Wall))
		w.Varint(ps.Flops)
	}
	w.Uvarint(uint64(len(s.Counters)))
	for name, v := range s.Counters {
		w.String(name)
		w.Varint(v)
	}
}

// readSnapshotBin decodes a perf delta. Empty phase/counter sets decode
// to nil maps, matching what encoding/json produces for the omitted
// fields of the JSON wire. A hostile count cannot balloon an allocation:
// the map size hints are clamped to the bytes remaining, and truncated
// entries poison the reader, which the caller's Finish surfaces.
func readSnapshotBin(r *comms.BinReader) perf.Snapshot {
	s := perf.Snapshot{Flops: r.Varint()}
	if nPhases := clampHint(r.Int(), r); nPhases > 0 {
		s.Phases = make(map[string]perf.PhaseStats, nPhases)
		for i := 0; i < nPhases && r.Err() == nil; i++ {
			name := r.String()
			ps := perf.PhaseStats{
				Calls: r.Varint(),
				Wall:  time.Duration(r.Varint()),
				Flops: r.Varint(),
			}
			if r.Err() == nil {
				s.Phases[name] = ps
			}
		}
	}
	if nCounters := clampHint(r.Int(), r); nCounters > 0 {
		s.Counters = make(map[string]int64, nCounters)
		for i := 0; i < nCounters && r.Err() == nil; i++ {
			name := r.String()
			v := r.Varint()
			if r.Err() == nil {
				s.Counters[name] = v
			}
		}
	}
	if r.Err() != nil {
		return perf.Snapshot{}
	}
	return s
}

// clampHint bounds a decoded element count by the bytes remaining (each
// element costs at least one byte), so it is safe to use as an
// allocation size hint; the per-element reads still detect truncation.
func clampHint(n int, r *comms.BinReader) int {
	if rem := r.Remaining(); n > rem {
		return rem
	}
	return n
}
