// Package distrib is the coordinator/worker runtime of the distributed
// sweep engine — the inter-process counterpart of cluster.RunTasksResumable,
// and this repository's stand-in for the MPI rank structure the SC11 runs
// decomposed their (bias × momentum × energy) grids over.
//
// One coordinator owns the task grid. Workers connect over a
// comms.Transport (TCP in production, in-memory loopback in tests),
// announce themselves, and pull *leases*: small batches of flat task
// indices with a deadline. A worker that completes a task reports the
// result (plus its perf counter delta for that task); a worker that
// crashes, hangs, or straggles loses its leases — on disconnect
// immediately, on silence after missed heartbeats, on a straggling task
// when the lease deadline passes — and the tasks are re-dispatched to
// live workers. Because every task is a deterministic function of its
// coordinates, duplicate executions caused by re-dispatch are harmless:
// the first result wins, later ones are discarded, and exactly one record
// per task reaches the checkpoint journal. The merged observables are
// therefore bitwise-identical to a single-process run, kill a worker or
// don't.
//
// The protocol is strictly request/response from the worker's side
// (heartbeats are fire-and-forget): the coordinator never sends an
// unsolicited frame, which makes the message flow deadlock-free even over
// unbuffered synchronous pipes.
package distrib

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/comms"
	"repro/internal/perf"
)

// ProtoVersion is the distrib message-schema version, checked in the
// hello exchange (the comms frame layer has its own, lower-level version
// byte). Version 2 added the run-spec hash to the handshake. Version 3
// added epoch fencing (run ID + incarnation epoch in the welcome, epoch
// tags on results) and made sweep completion an explicit done message —
// before, "coordinator hung up" was the completion signal, which made a
// coordinator crash indistinguishable from a finished sweep. Version 4
// added wire-format negotiation (binary payloads for the hot message
// types) and batched result uploads; the coordinator still accepts
// ProtoVersionMin workers, which simply get the v3 wire — JSON frames,
// one result per frame.
const (
	ProtoVersion    = 4
	ProtoVersionMin = 3
)

// Negotiated wire formats. The handshake (hello/welcome) is always
// JSON — negotiation must precede the thing it negotiates — and every
// binary-payload message has its own frame type, so the decoder
// dispatches on the frame, never on connection state.
const (
	wireJSON = "json"
	wireBin  = "bin"
)

// Frame types of the coordinator/worker protocol. Types 1–9 are the v3
// protocol (JSON payloads); 10+ are the v4 additions — the binary
// variants of the hot messages plus batched result uploads in both
// formats.
const (
	msgHello comms.MsgType = iota + 1
	msgWelcome
	msgError
	msgLeaseRequest
	msgLease
	msgResult
	msgHeartbeat
	msgBye
	msgDone
	msgLeaseBin       // lease grant, binary payload
	msgResultBatch    // coalesced result upload, JSON payload
	msgResultBatchBin // coalesced result upload, binary payload
	msgHeartbeatBin   // liveness beacon, binary payload
)

// helloMsg is the worker's opening frame: its identity, protocol version,
// the task grid it was configured for, and the content hash of its run
// spec. The coordinator rejects a worker whose grid disagrees with its
// own, and — stronger — one whose spec hash differs: the grid dims catch
// only size mismatches, while the spec hash covers everything that
// determines results (device, energy window, formalism, solver knobs).
// Either mismatch usually means a flag drift between the two processes,
// which would otherwise silently corrupt the sweep.
type helloMsg struct {
	ID    string `json:"id"`
	Proto int    `json:"proto"`
	NBias int    `json:"nBias"`
	NK    int    `json:"nK"`
	NE    int    `json:"nE"`
	// SpecHash is the worker's spec.RunSpec.SpecHash ("" when the caller
	// runs the protocol without a spec, e.g. protocol-level tests; the
	// check is then skipped on that side).
	SpecHash string `json:"specHash,omitempty"`
	// Wire is the wire format the worker supports and prefers for the
	// hot messages: "bin" or "json" ("" — as every v3 worker sends —
	// means json). The coordinator confirms the session's format in the
	// welcome; binary is used only when both sides offer it.
	Wire string `json:"wire,omitempty"`
}

// welcomeMsg is the coordinator's accept: the authoritative grid and
// spec hash plus the liveness parameters the worker must honor. RunID
// and Epoch fence coordinator incarnations: a worker that rejoins after
// a coordinator crash pins the RunID from its first welcome (a changed
// RunID means a different run reused the address — fatal) and adopts the
// new Epoch, discarding any in-flight results computed under the old
// one. Both are empty/zero when the caller runs without a journal-backed
// run identity (e.g. protocol tests), which disables fencing.
type welcomeMsg struct {
	NBias          int           `json:"nBias"`
	NK             int           `json:"nK"`
	NE             int           `json:"nE"`
	SpecHash       string        `json:"specHash,omitempty"`
	RunID          string        `json:"runID,omitempty"`
	Epoch          uint64        `json:"epoch,omitempty"`
	HeartbeatEvery time.Duration `json:"heartbeatEvery"`
	LeaseTimeout   time.Duration `json:"leaseTimeout"`
	// Wire is the coordinator's choice of wire format for this session:
	// "bin" commits both sides to the binary hot-message variants, ""
	// or "json" to the v3 JSON wire. v3 workers ignore the field and
	// are never offered "bin" (they did not advertise it).
	Wire string `json:"wire,omitempty"`
}

// errorMsg rejects a worker with a reason (bad protocol version, grid
// mismatch) before any lease is granted.
type errorMsg struct {
	Reason string `json:"reason"`
}

// leaseRequestMsg asks for up to Capacity tasks.
type leaseRequestMsg struct {
	Capacity int `json:"capacity"`
}

// leaseMsg answers a lease request. Either a batch of tasks with a TTL,
// or an empty batch with a RetryAfter back-off (tasks exist but are all
// leased elsewhere). Sweep completion is not a leaseMsg shape: it is the
// explicit msgDone frame, so "no tasks for you" and "the run is over"
// can never be confused with each other or with a dead coordinator.
type leaseMsg struct {
	Tasks      []int         `json:"tasks,omitempty"`
	TTL        time.Duration `json:"ttl,omitempty"`
	RetryAfter time.Duration `json:"retryAfter,omitempty"`
}

// doneMsg dismisses a worker: the sweep is complete (or the coordinator
// is draining and granting nothing further) — send a bye and disconnect
// cleanly. Carrying the epoch makes the dismissal attributable in logs.
type doneMsg struct {
	Epoch uint64 `json:"epoch,omitempty"`
}

// resultMsg reports one finished task: its payload on success, the final
// error string after the worker's retry policy gave up on failure, and in
// both cases the worker's perf-counter delta attributed to the task and
// the number of extra attempts spent.
type resultMsg struct {
	Task    int           `json:"task"`
	Payload []byte        `json:"payload,omitempty"`
	Retries int           `json:"retries,omitempty"`
	Failed  bool          `json:"failed,omitempty"`
	Error   string        `json:"error,omitempty"`
	Perf    perf.Snapshot `json:"perf"`
	// Epoch is the coordinator incarnation the worker was welcomed into
	// when it executed the task. A coordinator at a newer epoch discards
	// results tagged with an older one (they were already re-dispatched
	// from the journal-seeded lease table). Zero disables the fence.
	Epoch uint64 `json:"epoch,omitempty"`
}

// resultBatchMsg is the v4 coalesced result upload: every result the
// worker finished since the last flush, each carrying its own epoch tag
// (a batch can in principle straddle a rejoin) and its own perf delta
// (already delta-compressed: Snapshot.Diff omits unchanged phases and
// counters). One frame per batch is what cuts frames/task below one.
type resultBatchMsg struct {
	Results []resultMsg `json:"results"`
}

// heartbeatMsg is the worker's periodic liveness beacon, carrying the
// number of tasks it is currently executing (diagnostic only).
type heartbeatMsg struct {
	Running int `json:"running,omitempty"`
}

// byeMsg is the worker's clean sign-off.
type byeMsg struct{}

// decode unmarshals a frame payload, wrapping failures as protocol errors.
func decode(t comms.MsgType, payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("distrib: malformed message type %d: %w", t, err)
	}
	return nil
}
