package distrib

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/perf"
	"repro/internal/sched"
)

// TestWireRoundTrips pins the binary encodings: every hot message must
// decode back to exactly what was encoded, perf deltas included.
func TestWireRoundTrips(t *testing.T) {
	t.Run("lease", func(t *testing.T) {
		cases := []leaseMsg{
			{},
			{RetryAfter: 50 * time.Millisecond},
			{Tasks: []int{7}, TTL: 30 * time.Second},
			{Tasks: []int{100, 101, 102, 103, 104, 105, 106, 107}, TTL: 30 * time.Second},
			{Tasks: []int{9, 3, 250, 0}, TTL: time.Minute}, // non-monotonic: zigzag deltas go negative
		}
		var w comms.BinWriter
		for _, want := range cases {
			w.Reset()
			appendLeaseBin(&w, want)
			got, err := decodeLeaseBin(w.Bytes())
			if err != nil {
				t.Fatalf("decode %+v: %v", want, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round trip: got %+v, want %+v", got, want)
			}
		}
	})
	t.Run("heartbeat", func(t *testing.T) {
		var w comms.BinWriter
		appendHeartbeatBin(&w, heartbeatMsg{Running: 5})
		got, err := decodeHeartbeatBin(w.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got.Running != 5 {
			t.Fatalf("Running = %d", got.Running)
		}
	})
	t.Run("resultBatch", func(t *testing.T) {
		want := []resultMsg{
			{Task: 3, Payload: []byte{1, 2, 3, 4}, Epoch: 2, Perf: perf.Snapshot{Flops: 42}},
			{Task: 4, Failed: true, Error: "singular matrix", Retries: 2, Epoch: 2},
			{Task: 5, Payload: []byte("p"), Perf: perf.Snapshot{
				Flops:    7,
				Phases:   map[string]perf.PhaseStats{"rgf": {Calls: 3, Wall: time.Millisecond, Flops: 7}},
				Counters: map[string]int64{"sigma-cache-miss": 1},
			}},
			{Task: 6}, // empty payload, empty snapshot
		}
		var w comms.BinWriter
		appendResultBatchBin(&w, want)
		got, err := decodeResultBatchBin(w.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	})
}

// TestWireDecodeRejectsHostileCounts pins the allocation bound: a count
// prefix claiming far more elements than the payload can hold must be
// rejected before sizing any slice.
func TestWireDecodeRejectsHostileCounts(t *testing.T) {
	var w comms.BinWriter
	w.Byte(binFormat)
	w.Uvarint(0)       // TTL
	w.Uvarint(0)       // RetryAfter
	w.Uvarint(1 << 40) // task count with no tasks behind it
	if _, err := decodeLeaseBin(w.Bytes()); err == nil {
		t.Fatal("lease with hostile count decoded")
	}
	w.Reset()
	w.Byte(binFormat)
	w.Uvarint(1 << 40) // result count
	if _, err := decodeResultBatchBin(w.Bytes()); err == nil {
		t.Fatal("result batch with hostile count decoded")
	}
	// Wrong payload-format version: must fail, not misparse.
	if _, err := decodeLeaseBin([]byte{binFormat + 1, 0, 0, 0}); err == nil {
		t.Fatal("lease with unknown format byte decoded")
	}
}

// FuzzDecodeLeaseBin pins the never-panic contract of the lease decoder
// on hostile payloads.
func FuzzDecodeLeaseBin(f *testing.F) {
	var w comms.BinWriter
	appendLeaseBin(&w, leaseMsg{Tasks: []int{10, 11, 12}, TTL: 30 * time.Second})
	f.Add(append([]byte(nil), w.Bytes()...))
	f.Add([]byte{binFormat})
	f.Add([]byte{binFormat, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, p []byte) {
		l, err := decodeLeaseBin(p)
		if err == nil {
			for _, task := range l.Tasks {
				if task < 0 {
					t.Fatalf("accepted negative task %d", task)
				}
			}
		} else if !errors.Is(err, comms.ErrBadPayload) && l.Tasks != nil {
			t.Fatal("error with non-nil tasks")
		}
	})
}

// FuzzDecodeResultBatchBin pins the never-panic contract of the result
// decoder, the layer that receives attacker-controllable bytes first.
func FuzzDecodeResultBatchBin(f *testing.F) {
	var w comms.BinWriter
	appendResultBatchBin(&w, []resultMsg{
		{Task: 1, Payload: []byte("ok"), Epoch: 3, Perf: perf.Snapshot{Flops: 9}},
		{Task: 2, Failed: true, Error: "x"},
	})
	f.Add(append([]byte(nil), w.Bytes()...))
	f.Add([]byte{binFormat, 1})
	f.Add([]byte{binFormat, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, p []byte) {
		// Must never panic; the only contract on hostile bytes is an error
		// or a well-formed batch.
		decodeResultBatchBin(p)
	})
}

// runSweep drives a full loopback sweep with nWorkers and returns the
// coordinator's report. Options and worker options are shaped by the
// callbacks so one harness serves the format/shard matrix below.
func runSweep(t *testing.T, nBias, nK, nE, nWorkers int, opts Options, wopts func(i int) WorkerOptions) (*Report, *results, *cluster.MemJournal) {
	t.Helper()
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res := newResults(nBias, nK, nE)
	journal := &cluster.MemJournal{}
	opts.Journal = journal
	opts.Restore = res.restore
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, opts)

	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		conn := dial(t, lb, "coord")
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			meter := &flopMeter{}
			wo := wopts(i)
			wo.ID = fmt.Sprintf("w%d", i)
			wo.Pool = sched.New(1)
			wo.PerfNow = meter.now
			err := RunWorker(context.Background(), conn, nBias, nK, nE, wo,
				workerFn(nK, nE, meter, withDelay(time.Millisecond, nil)))
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, conn)
	}
	rep := waitServe(t, ch)
	wg.Wait()
	return rep, res, journal
}

// TestBinaryWireSweepExact is the v4 baseline: a binary-wire batched
// sweep must reproduce the serial observables bitwise, append exactly
// one record per task, and merge deltas to the exact serial flop total —
// the wire format must be invisible to every number that matters.
func TestBinaryWireSweepExact(t *testing.T) {
	const nBias, nK, nE = 2, 3, 8
	total := nBias * nK * nE
	rep, res, journal := runSweep(t, nBias, nK, nE, 3, Options{}, func(i int) WorkerOptions {
		return WorkerOptions{Capacity: 4}
	})
	checkValues(t, res, nil)
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want %d", journal.Len(), total)
	}
	if got, want := rep.Perf.Flops, serialFlops(total, nil); got != want {
		t.Fatalf("merged flops %d, want exact serial total %d", got, want)
	}
	// Batched grants and the wire counters must be visible in the merged
	// counters (coordinator side of the accounting).
	if rep.Perf.Counters["batched-grants"] == 0 {
		t.Fatal("no batched grants recorded despite capacity 4")
	}
	if rep.Perf.Counters["wire-frames-sent"] == 0 || rep.Perf.Counters["wire-bytes-recv"] == 0 {
		t.Fatalf("wire counters missing from merged perf: %v", rep.Perf.Counters)
	}
}

// TestV3WorkerJSONFallback pins backward compatibility: a fleet mixing a
// legacy v3 worker (JSON wire, one result per frame — simulated via
// forceProto) with a current binary-wire worker must complete the sweep
// with bitwise-identical observables, exactly one record per task, and
// the exact flop total. The v3 worker must actually be granted work.
func TestV3WorkerJSONFallback(t *testing.T) {
	const nBias, nK, nE = 2, 3, 8
	total := nBias * nK * nE
	rep, res, journal := runSweep(t, nBias, nK, nE, 2, Options{}, func(i int) WorkerOptions {
		if i == 0 {
			return WorkerOptions{forceProto: ProtoVersionMin, Capacity: 2}
		}
		return WorkerOptions{Capacity: 2}
	})
	checkValues(t, res, nil)
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want %d", journal.Len(), total)
	}
	if got, want := rep.Perf.Flops, serialFlops(total, nil); got != want {
		t.Fatalf("merged flops %d, want exact serial total %d", got, want)
	}
	if rep.Workers != 2 {
		t.Fatalf("workers = %d, want 2", rep.Workers)
	}
}

// TestForcedJSONWire pins the coordinator-side override: with WireFormat
// "json" even a binary-advertising worker gets the JSON wire, and the
// sweep stays exact.
func TestForcedJSONWire(t *testing.T) {
	const nBias, nK, nE = 1, 2, 6
	total := nBias * nK * nE
	rep, res, journal := runSweep(t, nBias, nK, nE, 2, Options{WireFormat: "json"}, func(i int) WorkerOptions {
		return WorkerOptions{Capacity: 3}
	})
	checkValues(t, res, nil)
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want %d", journal.Len(), total)
	}
	if got, want := rep.Perf.Flops, serialFlops(total, nil); got != want {
		t.Fatalf("merged flops %d, want %d", got, want)
	}
}

// TestShardedStealCompletes drives the sharded scheduler through its
// failure drill: two shards, every worker homed on shard 0 frozen by
// ShardHold, so shard-1 workers must drain their own partition and then
// demonstrably steal shard 0's. The sweep must stay bitwise exact, every
// journal record must carry its shard tag, and at least one steal must
// be observed.
func TestShardedStealCompletes(t *testing.T) {
	const nBias, nK, nE = 2, 3, 8
	total := nBias * nK * nE
	rep, res, journal := runSweep(t, nBias, nK, nE, 2, Options{
		Shards:     2,
		ShardHold:  2 * time.Second,
		RetryAfter: 5 * time.Millisecond,
	}, func(i int) WorkerOptions {
		return WorkerOptions{Capacity: 4}
	})
	checkValues(t, res, nil)
	if got, want := rep.Perf.Flops, serialFlops(total, nil); got != want {
		t.Fatalf("merged flops %d, want exact serial total %d", got, want)
	}
	if rep.Shards != 2 {
		t.Fatalf("report shards = %d, want 2", rep.Shards)
	}
	if rep.Steals == 0 {
		t.Fatal("no steals observed despite shard 0 being held")
	}
	if rep.Perf.Counters["shard-steals"] != int64(rep.Steals) {
		t.Fatalf("shard-steals counter %d != report steals %d", rep.Perf.Counters["shard-steals"], rep.Steals)
	}
	// Journal shard tags: contiguous-block partition, recomputed here.
	recs, _ := journal.Load()
	if len(recs) != total {
		t.Fatalf("journal has %d records, want %d", len(recs), total)
	}
	sawShard1 := false
	for _, rec := range recs {
		want := rec.Index * 2 / total
		if rec.Shard != want {
			t.Fatalf("record %d tagged shard %d, want %d", rec.Index, rec.Shard, want)
		}
		if rec.Shard == 1 {
			sawShard1 = true
		}
	}
	if !sawShard1 {
		t.Fatal("no record tagged shard 1")
	}
}

// TestShardOfPartition pins the partition arithmetic: contiguous
// balanced blocks covering the grid exactly, deterministic for the life
// of a run.
func TestShardOfPartition(t *testing.T) {
	c := &coordinator{total: 10, shards: make([][]int, 3)}
	counts := make([]int, 3)
	prev := 0
	for i := 0; i < c.total; i++ {
		sh := c.shardOf(i)
		if sh < prev || sh >= 3 {
			t.Fatalf("shardOf(%d) = %d (prev %d)", i, sh, prev)
		}
		prev = sh
		counts[sh]++
	}
	for sh, n := range counts {
		if n < 3 || n > 4 {
			t.Fatalf("shard %d owns %d tasks of 10 over 3 shards", sh, n)
		}
	}
}

// wireBytes sums both directions of the coordinator-side wire counters.
func wireBytes(rep *Report) int64 {
	return rep.Perf.Counters["wire-bytes-sent"] + rep.Perf.Counters["wire-bytes-recv"]
}

// TestWireBytesPerTaskRatio is the headline economy claim: the lean
// fabric (binary wire, capacity-8 lease batches, coalesced uploads) must
// move at least 4× fewer bytes per task than the v3 shape (JSON wire,
// one task per lease, one result per frame). Heartbeats are pushed out
// of the window so the comparison is pure protocol.
func TestWireBytesPerTaskRatio(t *testing.T) {
	const nBias, nK, nE = 1, 4, 16
	total := nBias * nK * nE
	quiet := Options{HeartbeatEvery: time.Minute, LeaseTimeout: time.Minute}

	legacy := quiet
	legacy.WireFormat = "json"
	repJSON, _, _ := runSweep(t, nBias, nK, nE, 1, legacy, func(i int) WorkerOptions {
		return WorkerOptions{WireFormat: "json", Capacity: 1, UploadBatch: 1}
	})
	repBin, _, _ := runSweep(t, nBias, nK, nE, 1, quiet, func(i int) WorkerOptions {
		return WorkerOptions{Capacity: DefaultLeaseBatch}
	})

	jsonPer := float64(wireBytes(repJSON)) / float64(total)
	binPer := float64(wireBytes(repBin)) / float64(total)
	if jsonPer == 0 || binPer == 0 {
		t.Fatalf("wire counters missing: json %v bin %v", repJSON.Perf.Counters, repBin.Perf.Counters)
	}
	t.Logf("bytes/task: json one-per-frame %.1f, lean %.1f (%.1fx)", jsonPer, binPer, jsonPer/binPer)
	if jsonPer < 4*binPer {
		t.Fatalf("lean wire moves %.1f bytes/task vs %.1f JSON — less than the 4x economy this PR claims", binPer, jsonPer)
	}
}
