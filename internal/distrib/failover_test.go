package distrib

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/sched"
)

// TestIsHangupTable pins the error classes that mean "the peer's process
// is gone" — the set that sends a worker into its rejoin loop. Getting a
// member wrong in either direction is costly: a missed hangup turns a
// coordinator crash into an opaque worker error, a false positive turns
// an app-level failure into a futile rejoin spin.
func TestIsHangupTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"EOF", io.EOF, true},
		{"closed pipe", io.ErrClosedPipe, true},
		{"net closed", net.ErrClosed, true},
		{"ECONNRESET", syscall.ECONNRESET, true},
		{"EPIPE", syscall.EPIPE, true},
		{"wrapped EOF", fmt.Errorf("distrib: awaiting lease: %w", io.EOF), true},
		{"wrapped reset in op error", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"nil", nil, false},
		{"deadline", context.DeadlineExceeded, false},
		{"app error", errors.New("non-finite observable"), false},
		{"bad checksum", &comms.BadChecksumError{Want: 1, Got: 2}, false},
	}
	for _, tc := range cases {
		if got := isHangup(tc.err); got != tc.want {
			t.Errorf("isHangup(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPreDoneHangupIsCrash pins the protocol v3 semantic the done message
// exists for: a coordinator that hangs up before sending done crashed,
// and a worker without a rejoin window must surface that as an error —
// under v2 the same hangup was indistinguishable from completion and the
// worker exited 0, stranding the sweep with nobody noticing.
func TestPreDoneHangupIsCrash(t *testing.T) {
	server, client := net.Pipe()
	go func() {
		// A fake coordinator: welcome the worker, then die mid-run.
		cd := comms.NewCodec(server)
		mt, payload, err := cd.Recv()
		if err != nil || mt != msgHello {
			cd.Close()
			return
		}
		var hello helloMsg
		if decode(mt, payload, &hello) != nil {
			cd.Close()
			return
		}
		cd.Send(msgWelcome, welcomeMsg{
			NBias: hello.NBias, NK: hello.NK, NE: hello.NE,
			HeartbeatEvery: 50 * time.Millisecond, LeaseTimeout: time.Second,
		})
		// Consume exactly one lease request so the worker is demonstrably
		// mid-run, then vanish without a done.
		cd.Recv()
		cd.Close()
	}()

	err := RunWorker(context.Background(), client, 1, 1, 4, WorkerOptions{
		ID: "orphan", Pool: sched.New(1),
		Logf: func(string, ...any) {},
	}, workerFn(1, 4, nil, nil))
	if err == nil {
		t.Fatal("worker exited cleanly after a pre-done hangup")
	}
	if !strings.Contains(err.Error(), "lost coordinator") {
		t.Fatalf("error %q does not name the lost coordinator", err)
	}
}

// TestWorkerRejoinAcrossRestart is the in-process version of the failover
// drill: a coordinator at epoch 1 is killed mid-sweep, a successor at
// epoch 2 resumes from the same journal, and a worker with a rejoin
// window re-dials, re-handshakes into the same run, observes the epoch
// bump, and finishes the sweep. The merged observables must be exact, the
// journal must hold exactly one record per task across both incarnations,
// and the re-summed flop total must equal the serial count.
func TestWorkerRejoinAcrossRestart(t *testing.T) {
	const nBias, nK, nE = 1, 1, 12
	total := nBias * nK * nE
	lb := comms.NewLoopback()
	lis1, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	journal := &cluster.MemJournal{}
	res1 := newResults(nBias, nK, nE)

	// Kill coordinator #1 once a few tasks have landed.
	ctx1, kill := context.WithCancel(context.Background())
	var killOnce sync.Once
	ch1 := serveAsync(ctx1, lis1, nBias, nK, nE, Options{
		Journal: journal,
		Restore: res1.restore,
		RunID:   "run-rejoin",
		Epoch:   1,
		OnProgress: func(done, _ int) {
			if done >= 3 {
				killOnce.Do(kill)
			}
		},
	})

	var rejoins atomic.Int64
	var logMu sync.Mutex
	var logs []string
	meter := &flopMeter{}
	workerErr := make(chan error, 1)
	go func() {
		conn, err := comms.DialRetry(context.Background(), lb, "coord", 5*time.Second)
		if err != nil {
			workerErr <- err
			return
		}
		workerErr <- RunWorker(context.Background(), conn, nBias, nK, nE, WorkerOptions{
			ID: "survivor", Pool: sched.New(1), PerfNow: meter.now,
			RejoinWindow: 15 * time.Second,
			Dial: func(ctx context.Context) (net.Conn, error) {
				return comms.DialRetry(ctx, lb, "coord", 15*time.Second)
			},
			OnRejoin: func() { rejoins.Add(1) },
			Logf: func(format string, args ...any) {
				logMu.Lock()
				logs = append(logs, fmt.Sprintf(format, args...))
				logMu.Unlock()
			},
		}, workerFn(nK, nE, meter, withDelay(5*time.Millisecond, nil)))
	}()

	r1 := <-ch1
	if !errors.Is(r1.err, context.Canceled) {
		t.Fatalf("coordinator #1 exit = %v, want the injected kill (context.Canceled)", r1.err)
	}
	if got := journal.Len(); got == 0 || got >= total {
		t.Fatalf("journal holds %d records at the crash, want a strict partial (0 < n < %d)", got, total)
	}

	// Coordinator #2: same journal, same run ID, next epoch.
	lis2, err := lb.Listen("coord")
	if err != nil {
		t.Fatalf("re-listen after crash: %v", err)
	}
	res2 := newResults(nBias, nK, nE)
	ch2 := serveAsync(context.Background(), lis2, nBias, nK, nE, Options{
		Journal: journal,
		Restore: res2.restore,
		RunID:   "run-rejoin",
		Epoch:   2,
	})
	rep := waitServe(t, ch2)
	if err := <-workerErr; err != nil {
		t.Fatalf("worker did not survive the coordinator restart: %v", err)
	}

	if rejoins.Load() < 1 {
		t.Fatal("worker never entered the rejoin path")
	}
	logMu.Lock()
	var sawEpoch bool
	for _, l := range logs {
		if strings.Contains(l, "epoch 2") {
			sawEpoch = true
		}
	}
	logMu.Unlock()
	if !sawEpoch {
		t.Errorf("worker never logged the epoch bump; logs: %q", logs)
	}

	// res2 saw every task exactly once: the journaled prefix at seed time,
	// the remainder as live results.
	checkValues(t, res2, nil)
	if journal.Len() != total {
		t.Fatalf("journal has %d records across both incarnations, want exactly %d", journal.Len(), total)
	}
	if rep.Sweep.Restored+rep.Sweep.Completed != total {
		t.Fatalf("restored %d + completed %d != %d", rep.Sweep.Restored, rep.Sweep.Completed, total)
	}
	if want := serialFlops(total, nil); rep.Perf.Flops != want {
		t.Fatalf("merged flops across restart = %d, serial total = %d", rep.Perf.Flops, want)
	}
}

// TestGracefulDrain closes the drain channel mid-sweep and verifies the
// SIGTERM contract: the coordinator stops granting, accepts the in-flight
// results, returns ErrDrained with honest partial accounting, the worker
// is dismissed cleanly (exit nil, not a crash), and a successor run
// finishes the remainder from the journal.
func TestGracefulDrain(t *testing.T) {
	const nBias, nK, nE = 1, 1, 10
	total := nBias * nK * nE
	lb := comms.NewLoopback()
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	journal := &cluster.MemJournal{}
	res := newResults(nBias, nK, nE)
	drain := make(chan struct{})
	var drainOnce sync.Once
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{
		Journal:      journal,
		Restore:      res.restore,
		DrainTimeout: 5 * time.Second,
		Drain:        drain,
		OnProgress: func(done, _ int) {
			if done >= 2 {
				drainOnce.Do(func() { close(drain) })
			}
		},
	})
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(context.Background(), dial(t, lb, "coord"), nBias, nK, nE,
			WorkerOptions{ID: "drained", Pool: sched.New(1), Logf: func(string, ...any) {}},
			workerFn(nK, nE, nil, withDelay(10*time.Millisecond, nil)))
	}()

	r := <-ch
	if !errors.Is(r.err, ErrDrained) {
		t.Fatalf("Serve = %v, want ErrDrained", r.err)
	}
	if err := <-workerErr; err != nil {
		t.Fatalf("drained worker exited with %v, want a clean done dismissal", err)
	}
	done := r.rep.Sweep.Completed + r.rep.Sweep.Restored
	if done == 0 || done >= total {
		t.Fatalf("drain accounting: %d done of %d, want a strict partial", done, total)
	}
	if journal.Len() != done {
		t.Fatalf("journal has %d records, drain reported %d done", journal.Len(), done)
	}

	// The drained journal resumes to completion.
	lis2, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	res2 := newResults(nBias, nK, nE)
	ch2 := serveAsync(context.Background(), lis2, nBias, nK, nE, Options{
		Journal: journal, Restore: res2.restore,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(context.Background(), dial(t, lb, "coord"), nBias, nK, nE,
			WorkerOptions{Pool: sched.New(1)}, workerFn(nK, nE, nil, nil)); err != nil {
			t.Errorf("resume worker: %v", err)
		}
	}()
	rep2 := waitServe(t, ch2)
	wg.Wait()
	checkValues(t, res2, nil)
	if rep2.Sweep.Restored != done || journal.Len() != total {
		t.Fatalf("resume restored %d (want %d), journal %d (want %d)",
			rep2.Sweep.Restored, done, journal.Len(), total)
	}
}

// TestEpochFenceDiscardsStaleResults drives applyResult directly with the
// interleaving the fence exists for: a result computed under coordinator
// incarnation 1 arrives at incarnation 2, whose lease table was re-seeded
// from the journal. Accepting it would race the re-dispatched twin for a
// duplicate journal record; the fence must discard it, count it, and
// leave the lease table untouched.
func TestEpochFenceDiscardsStaleResults(t *testing.T) {
	const total = 2
	journal := &cluster.MemJournal{}
	c := &coordinator{
		opts:  Options{Epoch: 2}.withDefaults(),
		nBias: 1, nK: 1, nE: total,
		total:     total,
		st:        make([]taskState, total),
		shards:    [][]int{{0, 1}},
		remaining: total,
		workers:   make(map[string]*workerState),
		done:      make(chan struct{}),
	}
	c.opts.Journal = journal
	w := &workerState{id: "ghost", leased: make(map[int]bool)}
	c.workers[w.id] = w
	lease, over := c.grant(w, total)
	if over || len(lease.Tasks) != total {
		t.Fatalf("grant = %v over=%v, want both tasks", lease.Tasks, over)
	}

	// Stale: tagged with the dead incarnation.
	if err := c.applyResult(w, resultMsg{Task: 0, Payload: encodeVal(valFor(0)), Epoch: 1}); err != nil {
		t.Fatalf("stale result: %v", err)
	}
	if journal.Len() != 0 {
		t.Fatal("stale-epoch result reached the journal")
	}
	c.mu.Lock()
	if c.staleEpoch != 1 || c.remaining != total || c.st[0].phase != stateLeased {
		t.Fatalf("after stale result: staleEpoch=%d remaining=%d phase=%d, want 1/%d/leased",
			c.staleEpoch, c.remaining, c.st[0].phase, total)
	}
	c.mu.Unlock()

	// Current-epoch results are accepted as usual.
	for idx := 0; idx < total; idx++ {
		if err := c.applyResult(w, resultMsg{Task: idx, Payload: encodeVal(valFor(idx)), Epoch: 2}); err != nil {
			t.Fatalf("current result %d: %v", idx, err)
		}
	}
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want %d", journal.Len(), total)
	}
	rep := &Report{Sweep: &cluster.SweepReport{Total: total}}
	c.mu.Lock()
	c.fill(rep)
	c.mu.Unlock()
	if rep.StaleEpoch != 1 || rep.Sweep.Completed != total {
		t.Fatalf("report StaleEpoch=%d Completed=%d, want 1/%d", rep.StaleEpoch, rep.Sweep.Completed, total)
	}
}

// TestChaosSweepStillExact runs a sweep through deterministically hostile
// connections — cuts, stalls, and bit flips on every worker conn — and
// requires the full correctness contract anyway: every observable exact,
// exactly one journal record per task, and the merged flop total equal to
// the serial count. Cuts exercise the rejoin loop against a live
// coordinator; corruption exercises the frame CRC (a flipped bit must
// surface as a dropped conn and a re-dispatch, never as silent damage).
func TestChaosSweepStillExact(t *testing.T) {
	const nBias, nK, nE = 1, 2, 10
	total := nBias * nK * nE
	lb := comms.NewLoopback()
	chaos := &comms.ChaosTransport{Inner: lb, Cfg: comms.ChaosConfig{
		Seed:        0xC0FFEE,
		CutRate:     0.04,
		DelayRate:   0.05,
		MaxDelay:    time.Millisecond,
		CorruptRate: 0.02,
	}}
	lis, err := lb.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	journal := &cluster.MemJournal{}
	res := newResults(nBias, nK, nE)
	ch := serveAsync(context.Background(), lis, nBias, nK, nE, Options{
		Journal:      journal,
		Restore:      res.restore,
		RunID:        "run-chaos",
		Epoch:        1,
		LeaseTimeout: 500 * time.Millisecond,
		RetryAfter:   10 * time.Millisecond,
	})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := comms.DialRetry(context.Background(), chaos, "coord", 10*time.Second)
			if err != nil {
				t.Errorf("worker %d dial: %v", i, err)
				return
			}
			meter := &flopMeter{}
			// The worker's exit code is not asserted: the done dismissal
			// itself can fall to chaos (cut or corrupted), in which case the
			// worker burns its rejoin window against a closed listener and
			// reports an error — the sweep's correctness must not depend on
			// the dismissal frame surviving.
			RunWorker(context.Background(), conn, nBias, nK, nE, WorkerOptions{
				ID: fmt.Sprintf("chaos-%d", i), Pool: sched.New(1), PerfNow: meter.now,
				HandshakeTimeout: 2 * time.Second,
				RejoinWindow:     2 * time.Second,
				Dial: func(ctx context.Context) (net.Conn, error) {
					return comms.DialRetry(ctx, chaos, "coord", 2*time.Second)
				},
				Logf: func(string, ...any) {},
			}, workerFn(nK, nE, meter, withDelay(2*time.Millisecond, nil)))
		}(i)
	}
	rep := waitServe(t, ch)
	wg.Wait()

	checkValues(t, res, nil)
	if journal.Len() != total {
		t.Fatalf("journal has %d records, want exactly %d", journal.Len(), total)
	}
	if rep.Sweep.Completed != total {
		t.Fatalf("completed %d of %d", rep.Sweep.Completed, total)
	}
	if want := serialFlops(total, nil); rep.Perf.Flops != want {
		t.Fatalf("merged flops under chaos = %d, serial total = %d", rep.Perf.Flops, want)
	}
	t.Logf("chaos sweep: %d workers seen, %d redispatched, %d stale-epoch discards",
		rep.Workers, rep.Redispatched, rep.StaleEpoch)
}
