package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/spec"
)

// testSpec is a small, fast sweep: the 1D chain solves in milliseconds
// per energy point, which keeps the end-to-end tests snappy.
func testSpec(ne int) spec.RunSpec {
	s := spec.Default()
	s.Device.Name = "chain"
	s.Device.CellsX = 6
	s.Grid.NE = ne
	s.Grid.NK = 1
	s.Grid.EMin, s.Grid.EMax = -1, 1
	s.Exec.LeaseTimeout = spec.Duration(5 * time.Second)
	return s
}

// serialObservables computes the reference sweep in-process and renders
// it in omen's output format, returning only the observable rows (the
// byte-identity contract the service must honor).
func serialObservables(t *testing.T, s spec.RunSpec) []string {
	t.Helper()
	b, err := spec.Build(s)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sweep, err := b.Sim.TransmissionResumable(context.Background(), b.Grid, nil, b.SweepOptions())
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	var buf bytes.Buffer
	core.WriteSweep(&buf, sweep, perf.Snapshot{})
	return observableRows(buf.String())
}

// observableRows strips comment lines, leaving the E/T table.
func observableRows(text string) []string {
	var out []string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out
}

// newTestManager builds a manager with in-process workers over a temp
// data dir.
func newTestManager(t *testing.T, dir string, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		DataDir:        dir,
		MaxRunning:     1,
		DefaultWorkers: 1,
		SpawnWorker:    InProcessSpawner(),
		Logf:           t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitTerminal blocks until the job lands in a terminal state.
func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	deadline := time.After(120 * time.Second)
	for {
		ch := j.changed()
		st := j.State()
		if terminal(st) {
			return st
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("job %s stuck in %s", shortID(j.ID), st)
		}
	}
}

// TestSubmitRunResultStream drives the full happy path over HTTP:
// submit, run to completion on an in-process worker, fetch the result,
// and stream the journal — observables byte-identical to the serial
// engine, one SSE point per task.
func TestSubmitRunResultStream(t *testing.T) {
	s := testSpec(12)
	wantObs := serialObservables(t, s)

	m := newTestManager(t, t.TempDir(), nil)
	api := &API{M: m, Version: "test"}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	body, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 (%+v)", resp.StatusCode, v)
	}
	if v.ID != s.SpecHash() {
		t.Fatalf("job ID %s != spec hash %s", v.ID, s.SpecHash())
	}

	j, ok := m.Job(v.ID)
	if !ok {
		t.Fatal("job missing from manager")
	}
	if st := waitTerminal(t, j); st != StateDone {
		t.Fatalf("job landed %s, want done (err %q)", st, j.view(true).Error)
	}

	// Status endpoint.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var detail JobView
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if detail.State != StateDone || detail.Done != 12 || detail.Total != 12 {
		t.Fatalf("detail = %+v, want done 12/12", detail)
	}
	if detail.Flops <= 0 || detail.Perf == nil {
		t.Fatalf("detail should carry perf (flops %d)", detail.Flops)
	}

	// Result endpoint: observables byte-identical to serial.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d: %s", resp.StatusCode, text)
	}
	if got := observableRows(string(text)); !equalLines(got, wantObs) {
		t.Fatalf("result observables differ from serial:\n got %v\nwant %v", got, wantObs)
	}
	if !strings.Contains(string(text), "# cluster: ") {
		t.Fatal("result should carry the cluster summary comment")
	}

	// Stream endpoint: one point per task, then done.
	points, done := readStream(t, ts.URL+"/v1/jobs/"+v.ID+"/stream")
	if points != 12 {
		t.Fatalf("stream emitted %d points, want 12", points)
	}
	if done.State != StateDone {
		t.Fatalf("stream done event state = %s, want done", done.State)
	}

	// List endpoint includes it.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Fatalf("list = %+v, want the one job", list.Jobs)
	}

	// Metrics carry the engine counters.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "omend_flops_total") ||
		!strings.Contains(string(metrics), `omend_jobs{state="done"} 1`) {
		t.Fatalf("metrics missing expected series:\n%s", metrics)
	}
	// The coordinator's wire observability (frames/bytes moved, lease
	// grants) folds into the job's perf merge and must surface here next
	// to the engine counters.
	if !strings.Contains(string(metrics), `omend_counter_total{name="wire-bytes-sent"}`) ||
		!strings.Contains(string(metrics), `omend_counter_total{name="lease-grants"}`) {
		t.Fatalf("metrics missing wire counters:\n%s", metrics)
	}
}

// readStream consumes an SSE stream to its done event.
func readStream(t *testing.T, url string) (points int, done JobView) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "point":
				points++
			case "done":
				if err := json.Unmarshal([]byte(data), &done); err != nil {
					t.Fatalf("done event: %v", err)
				}
				return points, done
			}
		}
	}
	t.Fatalf("stream ended without done event (scan err %v)", sc.Err())
	return 0, done
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDedupAndReplay: re-submitting a completed spec to the same
// manager is a 200 dedup hit; re-submitting it to a fresh manager over
// the same data directory replays the journal — done with zero new
// solves and the exact journaled flop total.
func TestDedupAndReplay(t *testing.T) {
	s := testSpec(8)
	dir := t.TempDir()

	m1 := newTestManager(t, dir, nil)
	j1, created, err := m1.Submit(s, "alice")
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if st := waitTerminal(t, j1); st != StateDone {
		t.Fatalf("first run landed %s (%s)", st, j1.view(true).Error)
	}
	liveFlops := j1.view(true).Flops

	// Same manager: dedup, not a new job.
	j1b, created, err := m1.Submit(s, "bob")
	if err != nil || created || j1b != j1 {
		t.Fatalf("dedup: created=%v err=%v same=%v", created, err, j1b == j1)
	}
	m1.Close()

	// Fresh manager, same data dir: replay from journal. No SpawnWorker
	// is configured at all — replay must not need one.
	m2 := newTestManager(t, dir, func(c *Config) { c.SpawnWorker = nil })
	j2, created, err := m2.Submit(s, "carol")
	if err != nil || !created {
		t.Fatalf("replay submit: created=%v err=%v", created, err)
	}
	if st := waitTerminal(t, j2); st != StateDone {
		t.Fatalf("replay landed %s (%s)", st, j2.view(true).Error)
	}
	v2 := j2.view(true)
	if !v2.Replayed || v2.Restored != 8 {
		t.Fatalf("replay view = %+v, want replayed with 8 restored", v2)
	}
	if v2.Flops != liveFlops {
		t.Fatalf("replayed flops %d != live flops %d (journaled perf must re-sum exactly)", v2.Flops, liveFlops)
	}
	// And the store lists it as a complete historical job even before
	// the replay submission.
	sj, ok := m2.store.Lookup(s.SpecHash())
	if !ok || !sj.Complete || sj.Total != 8 {
		t.Fatalf("store lookup = %+v ok=%v, want complete 8-task job", sj, ok)
	}
}

// TestSubmitValidation: the HTTP layer rejects non-job specs with 400s.
func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, t.TempDir(), func(c *Config) { c.MaxRunning = -1 })
	ts := httptest.NewServer((&API{M: m}).Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		wantStatus int
		wantErr    string
	}{
		{"garbage", "{nope", http.StatusBadRequest, "parse"},
		{"unknown field", `{"divece":{}}`, http.StatusBadRequest, "divece"},
		{"iv mode", `{"mode":"iv"}`, http.StatusBadRequest, "job"},
		{"checkpoint set", `{"resilience":{"checkpoint":"x.journal"}}`, http.StatusBadRequest, "server"},
		{"bad priority", `{"exec":{"priority":"urgent"}}`, http.StatusBadRequest, "priority"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, body)
		}
		if !strings.Contains(string(body), tc.wantErr) {
			t.Errorf("%s: body %q missing %q", tc.name, body, tc.wantErr)
		}
	}

	// Unknown job lookups.
	for _, path := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/result", "/v1/jobs/deadbeef/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestAdmissionControl: quotas and saturation map to 429, and canceling
// a queued job frees its slot. No executors run, so jobs stay queued.
func TestAdmissionControl(t *testing.T) {
	m := newTestManager(t, t.TempDir(), func(c *Config) {
		c.MaxRunning = -1 // no executors: everything stays queued
		c.MaxQueued = 2
		c.ClientQuota = 1
	})
	ts := httptest.NewServer((&API{M: m}).Handler())
	defer ts.Close()

	submit := func(client string, ne int) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"device":{"name":"chain","cellsx":6},"grid":{"ne":%d,"nk":1,"emin":-1,"emax":1}}`, ne)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		req.Header.Set("X-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	read := func(resp *http.Response) (int, string) {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}

	r1 := submit("alice", 10)
	code, body := read(r1)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", code, body)
	}
	var v1 JobView
	json.Unmarshal([]byte(body), &v1)

	// Alice is at quota.
	if code, body = read(submit("alice", 11)); code != http.StatusTooManyRequests || !strings.Contains(body, "quota") {
		t.Fatalf("over-quota submit = %d: %s", code, body)
	}
	// Bob fills the queue.
	if code, _ = read(submit("bob", 12)); code != http.StatusAccepted {
		t.Fatalf("bob submit = %d", code)
	}
	// Carol finds it saturated, with Retry-After.
	r4 := submit("carol", 13)
	if r4.StatusCode != http.StatusTooManyRequests || r4.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated submit = %d, Retry-After %q", r4.StatusCode, r4.Header.Get("Retry-After"))
	}
	read(r4)

	// Cancel alice's queued job; carol now fits.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+v1.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if code, body = read(resp); code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", code, body)
	}
	if code, body = read(submit("carol", 13)); code != http.StatusAccepted {
		t.Fatalf("post-cancel submit = %d: %s", code, body)
	}
}

// TestDrainAndResume: a drain lands a running job in "drained" with a
// resumable journal, and re-submitting the spec to a fresh manager
// completes it with byte-identical observables.
func TestDrainAndResume(t *testing.T) {
	s := testSpec(16)
	wantObs := serialObservables(t, s)
	dir := t.TempDir()

	// The worker never connects: its spawner blocks until released, so
	// the job is deterministically mid-flight (running, nothing leased)
	// when the drain hits.
	release := make(chan struct{})
	m1 := newTestManager(t, dir, func(c *Config) {
		c.SpawnWorker = func(ctx context.Context, addr string, ws spec.RunSpec) error {
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	})
	j1, _, err := m1.Submit(s, "alice")
	if err != nil {
		t.Fatal(err)
	}
	for j1.State() == StateQueued {
		<-j1.changed()
	}
	close(release)
	m1.Drain(30 * time.Second)
	if st := j1.State(); st != StateDrained {
		t.Fatalf("after drain job is %s, want drained (%s)", st, j1.view(true).Error)
	}
	if _, _, err := m1.Submit(s, "alice"); err == nil {
		t.Fatal("submit after drain should be refused")
	}

	// Fresh manager, same data dir: the re-submission resumes the
	// journal and completes the sweep.
	m2 := newTestManager(t, dir, nil)
	j2, created, err := m2.Submit(s, "alice")
	if err != nil || !created {
		t.Fatalf("resume submit: created=%v err=%v", created, err)
	}
	if st := waitTerminal(t, j2); st != StateDone {
		t.Fatalf("resumed job landed %s (%s)", st, j2.view(true).Error)
	}
	sweep, d, _, _, ok := j2.Result()
	if !ok {
		t.Fatal("resumed job has no result")
	}
	var buf bytes.Buffer
	core.WriteSweep(&buf, sweep, d)
	if got := observableRows(buf.String()); !equalLines(got, wantObs) {
		t.Fatalf("resumed observables differ from serial:\n got %v\nwant %v", got, wantObs)
	}
}

// TestCancelRunning: canceling a running job lands it canceled.
func TestCancelRunning(t *testing.T) {
	s := testSpec(10)
	// A worker that never connects keeps the job running indefinitely.
	m := newTestManager(t, t.TempDir(), func(c *Config) {
		c.SpawnWorker = func(ctx context.Context, addr string, ws spec.RunSpec) error {
			<-ctx.Done()
			return ctx.Err()
		}
	})
	j, _, err := m.Submit(s, "alice")
	if err != nil {
		t.Fatal(err)
	}
	for j.State() == StateQueued {
		<-j.changed()
	}
	ok, err := m.Cancel(j.ID)
	if !ok || err != nil {
		t.Fatalf("cancel: ok=%v err=%v", ok, err)
	}
	if st := waitTerminal(t, j); st != StateCanceled {
		t.Fatalf("job landed %s, want canceled", st)
	}
	// Canceling again reports conflict.
	if ok, _ := m.Cancel(j.ID); ok {
		t.Fatal("second cancel should refuse a finished job")
	}
}
