package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/perf"
	"repro/internal/spec"
	"repro/internal/transport"
)

// streamEvent is one SSE frame: event name plus JSON data.
func writeEvent(w http.ResponseWriter, fl http.Flusher, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	fl.Flush()
}

// pointEvent is one committed sweep point.
type pointEvent struct {
	Index  int     `json:"index"`
	K      int     `json:"k"`
	E      int     `json:"e"`
	Energy float64 `json:"energy"`
	T      float64 `json:"T"`
}

// counterEvent carries the cumulative engine counters of the points
// streamed so far (summed from the journaled per-task perf deltas).
type counterEvent struct {
	Points    int   `json:"points"`
	Flops     int64 `json:"flops"`
	SigmaHits int64 `json:"sigmaHits,omitempty"`
	SigmaMiss int64 `json:"sigmaMisses,omitempty"`
	Batched   int64 `json:"batchedSolves,omitempty"`
}

// stream follows a job live over SSE: an initial `job` snapshot, a
// `point` per result as it commits to the journal, periodic `counters`,
// and a final `done` with the terminal view. GET /v1/jobs/{id}/stream.
//
// The stream reads the job's journal, not the coordinator: results are
// emitted only once durably committed, so a stream never shows a point
// a crash could retract. Streaming a journaled historical job replays
// its records and closes.
func (a *API) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fl, ok := w.(http.Flusher)
	if !ok {
		jsonError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	j, live := a.M.Job(id)
	var s spec.RunSpec
	switch {
	case live:
		s = j.Spec
	default:
		sj, stored := a.M.store.Lookup(id)
		if !stored {
			jsonError(w, http.StatusNotFound, "unknown job %s", id)
			return
		}
		s = sj.Spec
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	if live {
		writeEvent(w, fl, "job", j.view(false))
	} else {
		sj, _ := a.M.store.Lookup(id)
		writeEvent(w, fl, "job", sj.View())
	}

	grid := transport.UniformGrid(s.Grid.EMin, s.Grid.EMax, s.Grid.NE)
	nK, nE := s.Grid.NK, s.Grid.NE
	tail := cluster.NewTail(a.M.JournalPath(id))
	seen := make(map[int]bool)
	var agg perf.Snapshot

	emit := func() bool {
		recs, err := tail.Poll()
		if err != nil {
			writeEvent(w, fl, "error", map[string]string{"error": err.Error()})
			return false
		}
		fresh := 0
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= nK*nE || seen[rec.Index] {
				continue
			}
			seen[rec.Index] = true
			fresh++
			t := cluster.TaskAt(rec.Index, nK, nE)
			ev := pointEvent{Index: rec.Index, K: t.K, E: t.E}
			if t.E < len(grid) {
				ev.Energy = grid[t.E]
			}
			if len(rec.Payload) >= 8 {
				ev.T = math.Float64frombits(binary.LittleEndian.Uint64(rec.Payload))
			}
			writeEvent(w, fl, "point", ev)
			if rec.Perf != nil {
				agg.Add(*rec.Perf)
			}
		}
		if fresh > 0 {
			// Batched solves: the batch-width-N histogram weighted by N.
			var batched int64
			for name, n := range agg.Counters {
				var width int64
				if _, err := fmt.Sscanf(name, "batch-width-%d", &width); err == nil {
					batched += width * n
				}
			}
			writeEvent(w, fl, "counters", counterEvent{
				Points:    len(seen),
				Flops:     agg.Flops,
				SigmaHits: agg.Counters["sigma-hits"],
				SigmaMiss: agg.Counters["sigma-misses"],
				Batched:   batched,
			})
		}
		return true
	}

	if !live {
		// Historical job: replay what the journal holds, then close.
		if emit() {
			sj, _ := a.M.store.Lookup(id)
			writeEvent(w, fl, "done", sj.View())
		}
		return
	}

	// Live job: follow the journal until the job lands terminal. Wakes
	// on job transitions (every committed result pings) with a timer
	// backstop for anything in between.
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		ch := j.changed()
		st := j.State()
		if !emit() {
			return
		}
		if terminal(st) {
			writeEvent(w, fl, "done", j.view(true))
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		case <-tick.C:
		}
	}
}
