package server

// Admission queue: three strict priority classes, FIFO within a class.
// Strict priority is the right shape for a simulation service — a
// high-priority design sweep should never wait behind a bulk parameter
// scan — and the per-client quota in the manager keeps one client from
// starving the rest by flooding the high class.

// Priority class indices, highest first.
const (
	classHigh = iota
	classNormal
	classLow
	numClasses
)

// classOf maps a validated spec priority string (see spec.Validate) to
// its class index. Empty means normal.
func classOf(priority string) int {
	switch priority {
	case "high":
		return classHigh
	case "low":
		return classLow
	default:
		return classNormal
	}
}

// className is the inverse, for API responses.
func className(class int) string {
	switch class {
	case classHigh:
		return "high"
	case classLow:
		return "low"
	default:
		return "normal"
	}
}

// jobQueue holds queued jobs by class. Not self-locking: the manager's
// mutex guards it.
type jobQueue struct {
	classes [numClasses][]*Job
}

func (q *jobQueue) push(j *Job) {
	q.classes[j.Class] = append(q.classes[j.Class], j)
}

// pop removes and returns the oldest job of the highest non-empty
// class, skipping jobs canceled while queued; nil when empty.
func (q *jobQueue) pop() *Job {
	for c := range q.classes {
		for len(q.classes[c]) > 0 {
			j := q.classes[c][0]
			q.classes[c][0] = nil
			q.classes[c] = q.classes[c][1:]
			if j.State() == StateQueued {
				return j
			}
		}
	}
	return nil
}

// depth counts live (non-canceled) queued jobs.
func (q *jobQueue) depth() int {
	n := 0
	for c := range q.classes {
		for _, j := range q.classes[c] {
			if j.State() == StateQueued {
				n++
			}
		}
	}
	return n
}
