// Package server turns the batch engine into a simulation service: a
// job manager that runs submitted RunSpecs through the distributed
// coordinator on a bounded executor, an admission queue with priority
// classes and per-client quotas, and an HTTP/SSE front end (`cmd/omend`)
// for submit/poll/stream/cancel.
//
// The engine stays importable and ignorant of HTTP — the server
// composes it. Job identity is the spec's content hash: submitting a
// spec twice is by construction the same job, a completed job's journal
// is replayed instead of recomputed, and a drained or crashed job's
// journal is resumed by the next submission of the same spec. Every
// correctness property (byte-identical observables, exact flop totals,
// exactly-once journals under failover) is inherited from the engine;
// the server adds only scheduling and transport.
package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/spec"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: admitted, waiting for an executor slot.
	StateQueued State = "queued"
	// StateRunning: executing on the distributed engine.
	StateRunning State = "running"
	// StateDone: every task accounted for; result available.
	StateDone State = "done"
	// StateFailed: the run ended with an error; the journal (if any
	// results committed) is kept, so a re-submission resumes.
	StateFailed State = "failed"
	// StateCanceled: canceled by the client mid-queue or mid-flight.
	StateCanceled State = "canceled"
	// StateDrained: a graceful server drain stopped the run; committed
	// results are journaled and a re-submission completes the remainder.
	StateDrained State = "drained"
)

// terminal reports whether a state is final.
func terminal(st State) bool {
	switch st {
	case StateDone, StateFailed, StateCanceled, StateDrained:
		return true
	}
	return false
}

// Job is one submitted spec moving through the service. All fields
// behind mu; readers take snapshots via view().
type Job struct {
	// Immutable after creation.
	ID        string // the spec's SpecHash — job identity IS content identity
	Spec      spec.RunSpec
	Client    string
	Class     int // priority class index (see queue.go)
	Summary   string
	Submitted time.Time

	mu           sync.Mutex
	state        State
	err          string
	started      time.Time
	finished     time.Time
	done         int // completed+restored+quarantined tasks
	total        int
	restored     int // tasks restored from the journal at start
	replayed     bool
	runID        string
	epoch        uint64
	workers      int
	redispatched int
	perf         perf.Snapshot
	sweep        *core.TransmissionSweep
	report       *cluster.SweepReport

	cancel    context.CancelFunc
	drain     chan struct{}
	drainOnce sync.Once
	// change is closed and replaced on every observable transition —
	// streams wait on it instead of polling hot.
	change chan struct{}
}

func newJob(id string, s spec.RunSpec, client string, class int, now time.Time) *Job {
	return &Job{
		ID: id, Spec: s, Client: client, Class: class,
		Summary: s.Summary(), Submitted: now,
		state:  StateQueued,
		change: make(chan struct{}),
	}
}

// ping wakes every waiter of changed(). Callers hold mu.
func (j *Job) pingLocked() {
	close(j.change)
	j.change = make(chan struct{})
}

// ping wakes waiters without changing state (used by the per-result
// commit hook to make streams tail the journal promptly).
func (j *Job) ping() {
	j.mu.Lock()
	j.pingLocked()
	j.mu.Unlock()
}

// changed returns a channel closed at the next observable transition.
func (j *Job) changed() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.change
}

// begin moves the job to running and arms its cancel/drain controls.
func (j *Job) begin(cancel context.CancelFunc, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.drain = make(chan struct{})
	j.pingLocked()
}

// requestDrain asks a running job to drain gracefully (idempotent).
func (j *Job) requestDrain() {
	j.mu.Lock()
	drain := j.drain
	j.mu.Unlock()
	if drain == nil {
		return
	}
	j.drainOnce.Do(func() { close(drain) })
}

// setTotal records the task-grid size once the plan is built.
func (j *Job) setTotal(total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total = total
	j.pingLocked()
}

// setIdentity records the journal-derived run identity.
func (j *Job) setIdentity(runID string, epoch uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.runID = runID
	j.epoch = epoch
}

// setProgress is the distrib.Options.OnProgress observer.
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done, j.total = done, total
	j.pingLocked()
}

// finish lands the job in a terminal state with its result (sweep may be
// nil for failed/canceled/drained ends).
func (j *Job) finish(st State, errMsg string, sweep *core.TransmissionSweep, rep *cluster.SweepReport, d perf.Snapshot, workers, redispatched, restored int, replayed bool, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = st
	j.err = errMsg
	j.finished = now
	j.sweep = sweep
	j.report = rep
	j.perf = d
	j.workers = workers
	j.redispatched = redispatched
	j.restored = restored
	j.replayed = replayed
	if rep != nil {
		j.done = rep.Restored + rep.Completed + len(rep.Quarantined)
		j.total = rep.Total
	}
	j.cancel = nil
	j.pingLocked()
}

// markCanceledIfQueued flips a queued job to canceled; returns whether it
// did. Running jobs are canceled through their context instead.
func (j *Job) markCanceledIfQueued(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCanceled
	j.finished = now
	j.pingLocked()
	return true
}

// snapshot-style accessors used by the manager and handlers.

func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the finished sweep, its perf delta, and the cluster
// accounting; ok is false until the job is done.
func (j *Job) Result() (sweep *core.TransmissionSweep, d perf.Snapshot, workers, redispatched int, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.sweep == nil {
		return nil, perf.Snapshot{}, 0, 0, false
	}
	return j.sweep, j.perf, j.workers, j.redispatched, true
}

// JobView is the JSON shape of a job in every API response.
type JobView struct {
	ID           string     `json:"id"`
	State        State      `json:"state"`
	Summary      string     `json:"summary"`
	Client       string     `json:"client,omitempty"`
	Priority     string     `json:"priority"`
	Submitted    time.Time  `json:"submitted"`
	Started      *time.Time `json:"started,omitempty"`
	Finished     *time.Time `json:"finished,omitempty"`
	Done         int        `json:"done"`
	Total        int        `json:"total"`
	Restored     int        `json:"restored,omitempty"`
	Replayed     bool       `json:"replayed,omitempty"`
	RunID        string     `json:"runID,omitempty"`
	Epoch        uint64     `json:"epoch,omitempty"`
	Workers      int        `json:"workers,omitempty"`
	Redispatched int        `json:"redispatched"`
	Flops        int64      `json:"flops"`
	Error        string     `json:"error,omitempty"`
	// Perf carries the full counter snapshot on detail views only.
	Perf *perf.Snapshot `json:"perf,omitempty"`
}

// view snapshots the job for an API response; detail adds the full perf
// counters.
func (j *Job) view(detail bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, State: j.state, Summary: j.Summary,
		Client: j.Client, Priority: className(j.Class),
		Submitted: j.Submitted,
		Done:      j.done, Total: j.total,
		Restored: j.restored, Replayed: j.replayed,
		RunID: j.runID, Epoch: j.epoch,
		Workers: j.workers, Redispatched: j.redispatched,
		Flops: j.perf.Flops, Error: j.err,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if detail {
		p := j.perf
		v.Perf = &p
	}
	return v
}
