package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/spec"
)

// Store reads the data directory's journals as the service's durable
// job history: each <spechash>.journal is one job, its header carries
// the full canonical spec (self-describing), and its record count
// against the spec's task grid says whether the job completed. A
// restarted daemon lists and replays jobs it never ran.
type Store struct {
	dir string
}

// NewStore wraps a data directory.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// StoredJob is one journal's summary.
type StoredJob struct {
	ID       string
	Spec     spec.RunSpec
	Summary  string
	RunID    string
	Done     int
	Total    int
	Complete bool
}

// Lookup reads one job's journal by ID; ok is false when no journal
// exists or it is unreadable as a job (no header, foreign spec).
func (st *Store) Lookup(id string) (StoredJob, bool) {
	return st.read(filepath.Join(st.dir, id+".journal"))
}

// List scans the data directory for job journals, sorted by file name
// (= job ID). Unreadable journals are skipped, not fatal: the store is
// a view over files another process may be writing.
func (st *Store) List() []StoredJob {
	paths, err := filepath.Glob(filepath.Join(st.dir, "*.journal"))
	if err != nil {
		return nil
	}
	out := make([]StoredJob, 0, len(paths))
	for _, p := range paths {
		if sj, ok := st.read(p); ok {
			out = append(out, sj)
		}
	}
	return out
}

// read parses one journal into a StoredJob.
func (st *Store) read(path string) (StoredJob, bool) {
	id := strings.TrimSuffix(filepath.Base(path), ".journal")
	if _, err := os.Stat(path); err != nil {
		return StoredJob{}, false
	}
	j, err := cluster.OpenFileJournal(path)
	if err != nil {
		return StoredJob{}, false
	}
	defer j.Close()
	h, err := j.ReadHeader()
	if err != nil || h == nil || len(h.Spec) == 0 {
		return StoredJob{}, false
	}
	var s spec.RunSpec
	if err := json.Unmarshal(h.Spec, &s); err != nil {
		return StoredJob{}, false
	}
	// Trust the file name only when it matches the header: a renamed or
	// hand-copied journal must not impersonate another job.
	if s.SpecHash() != id || h.SpecHash != id {
		return StoredJob{}, false
	}
	total := s.Grid.NK * s.Grid.NE
	recs, err := j.Load()
	if err != nil {
		return StoredJob{}, false
	}
	covered := make(map[int]bool, len(recs))
	for _, rec := range recs {
		if rec.Index >= 0 && rec.Index < total {
			covered[rec.Index] = true
		}
	}
	return StoredJob{
		ID: id, Spec: s, Summary: s.Summary(), RunID: h.RunID,
		Done: len(covered), Total: total, Complete: len(covered) == total,
	}, true
}

// View renders a stored job in the API's job shape. Complete journals
// present as done-but-not-yet-replayed; incomplete ones as drained
// (resumable by re-submission).
func (sj StoredJob) View() JobView {
	st := StateDrained
	if sj.Complete {
		st = StateDone
	}
	return JobView{
		ID: sj.ID, State: st, Summary: sj.Summary,
		Priority: className(classOf(sj.Spec.Exec.Priority)),
		Done:     sj.Done, Total: sj.Total,
		RunID: sj.RunID,
	}
}
