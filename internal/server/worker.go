package server

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/comms"
	"repro/internal/distrib"
	"repro/internal/spec"
)

// WorkerMain runs one worker of a job: build the spec, dial the
// coordinator (with patience — the worker usually starts before the
// listener's accept loop), pull leases until dismissed. Mirrors omen's
// worker mode; the daemon re-execs itself into this for each spawned
// worker, and tests call it in-process.
func WorkerMain(ctx context.Context, s spec.RunSpec, addr string) error {
	b, err := spec.Build(s)
	if err != nil {
		return err
	}
	plan, err := b.Sim.PlanTransmission(b.Grid, nil)
	if err != nil {
		return err
	}
	nBias, nK, nE := plan.Dims()
	conn, err := comms.DialRetry(ctx, comms.TCP{}, addr, 30*time.Second)
	if err != nil {
		return err
	}
	host, _ := os.Hostname()
	rejoin := s.Exec.RejoinWindow.Std()
	return distrib.RunWorker(ctx, conn, nBias, nK, nE, distrib.WorkerOptions{
		ID:   fmt.Sprintf("%s-%d", host, os.Getpid()),
		Pool: plan.Pool(),
		// Same lean-fabric posture as omen's worker mode: batched leases,
		// coalesced uploads, the spec's wire preference.
		Capacity:     distrib.DefaultLeaseBatch,
		WireFormat:   s.Exec.WireFormat,
		Retry:        b.RetryPolicy(),
		Injector:     b.Injector(),
		SpecHash:     s.SpecHash(),
		RejoinWindow: rejoin,
		Dial: func(ctx context.Context) (net.Conn, error) {
			return comms.DialRetry(ctx, comms.TCP{}, addr, rejoin)
		},
		OnRejoin: func() {
			// Work computed under the dead epoch is fenced out by the new
			// coordinator; a warm σ-cache would let its re-dispatched twins
			// skip decimation flops and break the exact flop merge.
			if b.Cache != nil {
				b.Cache.Reset()
			}
		},
	}, plan.Run)
}

// InProcessSpawner returns a SpawnFunc that runs workers as goroutines
// of this process — test and single-binary deployments. Production
// daemons re-exec themselves instead (process isolation: a crashing
// worker loses a lease, not the service).
func InProcessSpawner() SpawnFunc {
	return func(ctx context.Context, addr string, ws spec.RunSpec) error {
		return WorkerMain(ctx, ws, addr)
	}
}
