package server

import (
	"testing"
	"time"

	"repro/internal/spec"
)

// TestQueueOrder: strict priority across classes, FIFO within one,
// canceled jobs skipped.
func TestQueueOrder(t *testing.T) {
	now := time.Now()
	mk := func(id, priority string) *Job {
		s := spec.Default()
		s.Exec.Priority = priority
		return newJob(id, s, "c", classOf(priority), now)
	}
	var q jobQueue
	a := mk("a", "low")
	b := mk("b", "normal")
	c := mk("c", "high")
	d := mk("d", "normal")
	e := mk("e", "high")
	for _, j := range []*Job{a, b, c, d, e} {
		q.push(j)
	}
	if got := q.depth(); got != 5 {
		t.Fatalf("depth = %d, want 5", got)
	}
	// Cancel one high job while queued: pop must skip it.
	if !c.markCanceledIfQueued(now) {
		t.Fatal("markCanceledIfQueued refused a queued job")
	}
	want := []*Job{e, b, d, a}
	for i, w := range want {
		got := q.pop()
		if got != w {
			t.Fatalf("pop %d = %v, want %s", i, got, w.ID)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue should be nil")
	}
}

func TestClassOf(t *testing.T) {
	cases := map[string]int{
		"high": classHigh, "normal": classNormal, "low": classLow, "": classNormal,
	}
	for p, want := range cases {
		if got := classOf(p); got != want {
			t.Errorf("classOf(%q) = %d, want %d", p, got, want)
		}
		if p != "" && className(want) != p {
			t.Errorf("className(%d) = %q, want %q", want, className(want), p)
		}
	}
}
