package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/spec"
)

// maxSpecBytes bounds a submitted spec body. Specs are small by
// construction; anything bigger is not a spec.
const maxSpecBytes = 1 << 20

// API is the HTTP front end over a Manager.
type API struct {
	M *Manager
	// Version is reported by /healthz (the daemon's build version).
	Version string
}

// Handler builds the service mux.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.get)
	mux.HandleFunc("GET /v1/jobs/{id}/result", a.result)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", a.stream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("GET /healthz", a.healthz)
	mux.HandleFunc("GET /metrics", a.metrics)
	return mux
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clientOf names the submitting client for quota accounting. An
// explicit header wins; anonymous otherwise (quotas then apply to the
// anonymous pool collectively, which is the safe default).
func clientOf(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	return "anonymous"
}

// submit admits a spec: POST /v1/jobs with a (partial) RunSpec JSON
// body. 202 queued, 200 dedup hit, 400 invalid, 429 saturated/quota,
// 503 draining.
func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		jsonError(w, http.StatusRequestEntityTooLarge, "spec body exceeds %d bytes", maxSpecBytes)
		return
	}
	s, err := spec.Parse(body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.ValidateFor(spec.RoleServer); err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, created, err := a.M.Submit(s, clientOf(r))
	switch {
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrQuota):
		w.Header().Set("Retry-After", "5")
		jsonError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		jsonError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status := http.StatusAccepted
	if !created {
		status = http.StatusOK
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, status, j.view(false))
}

// list merges live jobs with the store's historical journals; a live
// job wins over its stored shadow. GET /v1/jobs.
func (a *API) list(w http.ResponseWriter, r *http.Request) {
	views := make(map[string]JobView)
	for _, sj := range a.M.store.List() {
		views[sj.ID] = sj.View()
	}
	for _, j := range a.M.Jobs() {
		views[j.ID] = j.view(false)
	}
	out := make([]JobView, 0, len(views))
	for _, v := range views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Submitted.Equal(out[k].Submitted) {
			return out[i].Submitted.After(out[k].Submitted)
		}
		return out[i].ID < out[k].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// lookup resolves a job ID against live jobs, then the store.
func (a *API) lookup(id string) (JobView, bool) {
	if j, ok := a.M.Job(id); ok {
		return j.view(true), true
	}
	if sj, ok := a.M.store.Lookup(id); ok {
		return sj.View(), true
	}
	return JobView{}, false
}

// get returns one job's detail view. GET /v1/jobs/{id}.
func (a *API) get(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := a.lookup(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// result streams the finished sweep in omen's exact text format (the
// byte-identical-to-serial contract is checked against this endpoint in
// the serve drill). 409 until the job is done; stored-but-not-live done
// jobs must be re-submitted first (a replay, not a recompute).
func (a *API) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := a.M.Job(id)
	if !ok {
		if sj, stored := a.M.store.Lookup(id); stored {
			jsonError(w, http.StatusConflict,
				"job %s is journaled but not loaded; re-submit its spec to replay it (complete=%v)", id, sj.Complete)
			return
		}
		jsonError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	sweep, d, workers, redisp, done := j.Result()
	if !done {
		jsonError(w, http.StatusConflict, "job %s is %s; result available when done", id, j.State())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	core.WriteSweep(w, sweep, d,
		fmt.Sprintf("# cluster: %d workers, %d leases re-dispatched", workers, redisp))
}

// cancel cancels a queued or running job. DELETE /v1/jobs/{id}.
func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := a.M.Cancel(id)
	if err != nil {
		jsonError(w, http.StatusNotFound, "%v", err)
		return
	}
	if !ok {
		jsonError(w, http.StatusConflict, "job %s already finished", id)
		return
	}
	j, _ := a.M.Job(id)
	writeJSON(w, http.StatusOK, j.view(false))
}

// healthz reports liveness, version, and load. Draining flips status
// so load balancers stop routing before the listener closes.
func (a *API) healthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if a.M.Draining() {
		status = "draining"
	}
	counts := a.M.Counts()
	byState := make(map[string]int, len(counts))
	for st, n := range counts {
		byState[string(st)] = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"version":    a.Version,
		"uptime":     a.M.Uptime().Round(time.Second).String(),
		"jobs":       byState,
		"queueDepth": a.M.QueueDepth(),
	})
}

// metrics serves the accumulated engine counters in Prometheus text
// format, plus job-state gauges.
func (a *API) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	agg := a.M.Aggregate()
	agg.WritePrometheus(w, "omend")
	fmt.Fprintf(w, "# TYPE omend_jobs gauge\n")
	states := []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateDrained}
	counts := a.M.Counts()
	for _, st := range states {
		fmt.Fprintf(w, "omend_jobs{state=%q} %d\n", st, counts[st])
	}
	fmt.Fprintf(w, "# TYPE omend_queue_depth gauge\nomend_queue_depth %d\n", a.M.QueueDepth())
}
