package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/perf"
	"repro/internal/spec"
)

// Admission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrSaturated: the queue is full. 429 with Retry-After.
	ErrSaturated = errors.New("server: queue full")
	// ErrQuota: the client has too many live jobs. 429.
	ErrQuota = errors.New("server: client quota exceeded")
	// ErrDraining: the server is shutting down. 503.
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrClosed: the manager has been shut down.
	ErrClosed = errors.New("server: closed")
)

// SpawnFunc launches one worker process (or goroutine) that dials addr
// and serves the given worker-variant spec until dismissed. It must
// respect ctx and return when the worker exits.
type SpawnFunc func(ctx context.Context, addr string, ws spec.RunSpec) error

// Config sizes the manager.
type Config struct {
	// DataDir holds one journal per job, named <spechash>.journal. The
	// directory is the service's durable state: restarting the daemon
	// over the same directory makes every finished job replayable and
	// every interrupted one resumable.
	DataDir string
	// MaxRunning bounds concurrently executing jobs (default 2). Zero
	// is normalized to the default; negative means "no executors" —
	// jobs queue but never start (used by admission tests).
	MaxRunning int
	// MaxQueued bounds the admission queue (default 16). Beyond it,
	// submissions get ErrSaturated.
	MaxQueued int
	// ClientQuota bounds one client's live (queued+running) jobs
	// (default 4; negative = unlimited).
	ClientQuota int
	// DefaultWorkers is the worker count for jobs whose spec leaves
	// Exec.Workers at 0 (default 2).
	DefaultWorkers int
	// SpawnWorker launches the job's workers. Required to run jobs.
	SpawnWorker SpawnFunc
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxRunning == 0 {
		c.MaxRunning = 2
	}
	if c.MaxRunning < 0 {
		c.MaxRunning = 0
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 16
	}
	if c.ClientQuota == 0 {
		c.ClientQuota = 4
	}
	if c.DefaultWorkers == 0 {
		c.DefaultWorkers = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Manager owns the job table, the admission queue, and the executor
// pool. One Manager per daemon.
type Manager struct {
	cfg   Config
	store *Store
	start time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job // every job this process has seen, by ID
	queue    jobQueue
	running  int
	draining bool
	closed   bool
	// aggregate accumulates the perf of every job finished by this
	// process — the /metrics counters.
	aggregate perf.Snapshot

	executors sync.WaitGroup
}

// NewManager builds a manager over dataDir and starts its executors.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("server: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:   cfg,
		store: NewStore(cfg.DataDir),
		start: time.Now(),
		jobs:  make(map[string]*Job),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.MaxRunning; i++ {
		m.executors.Add(1)
		go m.executor()
	}
	return m, nil
}

// Uptime reports how long the manager has been up.
func (m *Manager) Uptime() time.Duration { return time.Since(m.start) }

// Submit admits a spec as a job. The spec must already have passed
// ValidateFor(RoleServer). Returns the job and whether it was newly
// created (false = dedup hit on a live or remembered job).
func (m *Manager) Submit(s spec.RunSpec, client string) (*Job, bool, error) {
	id := s.SpecHash()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	if j, ok := m.jobs[id]; ok {
		// Same content hash, same job — unless the previous attempt
		// ended resumable (failed/canceled/drained), in which case the
		// re-submission re-enqueues it to finish the remainder from its
		// journal. Done jobs stay done: their result is served as-is.
		st := j.State()
		if st == StateQueued || st == StateRunning || st == StateDone {
			return j, false, nil
		}
	}
	if m.draining {
		return nil, false, ErrDraining
	}
	if m.queue.depth() >= m.cfg.MaxQueued {
		return nil, false, ErrSaturated
	}
	if m.cfg.ClientQuota > 0 && m.liveForLocked(client) >= m.cfg.ClientQuota {
		return nil, false, ErrQuota
	}
	j := newJob(id, s, client, classOf(s.Exec.Priority), time.Now())
	m.jobs[id] = j
	m.queue.push(j)
	m.cond.Signal()
	m.cfg.Logf("server: queued %s (%s, priority %s, client %s)", shortID(id), j.Summary, className(j.Class), client)
	return j, true, nil
}

// liveForLocked counts a client's queued+running jobs. Callers hold mu.
func (m *Manager) liveForLocked(client string) int {
	n := 0
	for _, j := range m.jobs {
		if j.Client != client {
			continue
		}
		switch j.State() {
		case StateQueued, StateRunning:
			n++
		}
	}
	return n
}

// Job returns a job this process has seen, by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots every known job, live ones first (the HTTP list merges
// these with the store's historical journals).
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	return out
}

// QueueDepth reports live queued jobs.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queue.depth()
}

// Counts tallies known jobs by state.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[State]int)
	for _, j := range m.jobs {
		out[j.State()]++
	}
	return out
}

// Draining reports whether a drain is in progress.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Aggregate returns the accumulated perf of every job this process
// finished (the /metrics exposition).
func (m *Manager) Aggregate() perf.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg := perf.Snapshot{}
	agg.Add(m.aggregate)
	return agg
}

// Cancel cancels a job: queued jobs are marked directly, running jobs
// through their context. Finished jobs return false.
func (m *Manager) Cancel(id string) (ok bool, err error) {
	m.mu.Lock()
	j, found := m.jobs[id]
	m.mu.Unlock()
	if !found {
		return false, fmt.Errorf("server: unknown job %s", id)
	}
	if j.markCanceledIfQueued(time.Now()) {
		m.cfg.Logf("server: canceled queued %s", shortID(id))
		return true, nil
	}
	j.mu.Lock()
	cancel := j.cancel
	running := j.state == StateRunning
	j.mu.Unlock()
	if running && cancel != nil {
		cancel()
		m.cfg.Logf("server: canceling running %s", shortID(id))
		return true, nil
	}
	return false, nil
}

// Drain stops admissions, asks running jobs to drain gracefully (their
// journals stay resumable), and waits up to timeout for executors to
// settle. Queued jobs are left queued — a restarted daemon re-admits
// them by re-submission.
func (m *Manager) Drain(timeout time.Duration) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return
	}
	m.draining = true
	var running []*Job
	for _, j := range m.jobs {
		if j.State() == StateRunning {
			running = append(running, j)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, j := range running {
		j.requestDrain()
	}
	done := make(chan struct{})
	go func() {
		m.executors.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		m.cfg.Logf("server: drain timeout after %v; %d jobs may be mid-flight", timeout, len(running))
	}
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
}

// Close hard-stops the manager: cancels running jobs and returns once
// executors exit. Used by tests; production uses Drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.draining = true
	m.closed = true
	var running []*Job
	for _, j := range m.jobs {
		if j.State() == StateRunning {
			running = append(running, j)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, j := range running {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	m.executors.Wait()
}

// executor is one slot of the bounded pool: pop, execute, repeat.
func (m *Manager) executor() {
	defer m.executors.Done()
	for {
		m.mu.Lock()
		var j *Job
		for {
			if m.closed || m.draining {
				m.mu.Unlock()
				return
			}
			if j = m.queue.pop(); j != nil {
				break
			}
			m.cond.Wait()
		}
		m.running++
		m.mu.Unlock()

		m.execute(j)

		m.mu.Lock()
		m.running--
		m.mu.Unlock()
	}
}

// JournalPath returns the on-disk journal of a job ID.
func (m *Manager) JournalPath(id string) string {
	return filepath.Join(m.cfg.DataDir, id+".journal")
}

// execute runs one job to a terminal state. The server owns journal
// placement: the submitted spec's Resilience.Checkpoint/Resume are
// rejected at validation, and here the job's journal is pinned to
// dataDir/<spechash>.journal — resume is implied by the file existing.
func (m *Manager) execute(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.begin(cancel, time.Now())
	m.cfg.Logf("server: running %s (%s)", shortID(j.ID), j.Summary)

	sweep, rep, d, workers, redisp, restored, replayed, err := m.run(ctx, j)
	now := time.Now()
	switch {
	case err == nil:
		m.finishAggregate(d)
		j.finish(StateDone, "", sweep, rep, d, workers, redisp, restored, replayed, now)
		m.cfg.Logf("server: done %s (%d/%d tasks, %d restored, replayed=%v)",
			shortID(j.ID), rep.Restored+rep.Completed, rep.Total, rep.Restored, replayed)
	case errors.Is(err, distrib.ErrDrained):
		j.finish(StateDrained, err.Error(), nil, rep, d, workers, redisp, restored, false, now)
		m.cfg.Logf("server: drained %s — journal resumable", shortID(j.ID))
	case ctx.Err() != nil:
		j.finish(StateCanceled, "canceled", nil, rep, d, workers, redisp, restored, false, now)
		m.cfg.Logf("server: canceled %s", shortID(j.ID))
	default:
		j.finish(StateFailed, err.Error(), nil, rep, d, workers, redisp, restored, false, now)
		m.cfg.Logf("server: failed %s: %v", shortID(j.ID), err)
	}
}

func (m *Manager) finishAggregate(d perf.Snapshot) {
	m.mu.Lock()
	m.aggregate.Add(d)
	m.mu.Unlock()
}

// run executes the job's sweep: journal replay when the journal already
// covers every task (zero new solves), the distributed engine otherwise.
func (m *Manager) run(ctx context.Context, j *Job) (sweep *core.TransmissionSweep, rep *cluster.SweepReport, d perf.Snapshot, workers, redisp, restored int, replayed bool, err error) {
	// The server's copy of the spec: journal pinned by content hash,
	// resume implied by its existence, worker count defaulted.
	s := j.Spec
	path := m.JournalPath(j.ID)
	s.Resilience.Checkpoint = path
	if _, serr := os.Stat(path); serr == nil {
		s.Resilience.Resume = true
	}
	if s.Exec.Workers == 0 {
		s.Exec.Workers = m.cfg.DefaultWorkers
	}

	b, err := spec.Build(s)
	if err != nil {
		return nil, nil, d, 0, 0, 0, false, err
	}
	plan, err := b.Sim.PlanTransmission(b.Grid, nil)
	if err != nil {
		return nil, nil, d, 0, 0, 0, false, err
	}
	nBias, nK, nE := plan.Dims()
	total := nBias * nK * nE
	j.setTotal(total)

	jnl, err := spec.OpenJournal(s, func(format string, args ...any) {
		m.cfg.Logf("server: %s: "+format, append([]any{shortID(j.ID)}, args...)...)
	}, cluster.WithFsync())
	if err != nil {
		return nil, nil, d, 0, 0, 0, false, err
	}
	defer jnl.Close()

	runID := ""
	if h, herr := jnl.ReadHeader(); herr == nil && h != nil {
		runID = h.RunID
	}

	if s.Resilience.Resume {
		// Replay short-circuit: when the journal already holds a verified
		// result for every task, the job is served from disk — restore,
		// assemble, zero new solves, flop total re-summed from the
		// journaled per-task perf deltas. This is what makes re-submitting
		// a completed spec free.
		if sweep, d, ok, rerr := m.replay(jnl, plan, total); rerr != nil {
			return nil, nil, d, 0, 0, 0, false, rerr
		} else if ok {
			epoch, eerr := jnl.LatestEpoch()
			if eerr != nil {
				return nil, nil, d, 0, 0, 0, false, eerr
			}
			j.setIdentity(runID, epoch)
			rep := &cluster.SweepReport{Total: total, Restored: total}
			return sweep, rep, d, 0, 0, total, true, nil
		}
	}

	epoch, err := jnl.LatestEpoch()
	if s.Resilience.Resume {
		epoch, err = jnl.BumpEpoch()
	}
	if err != nil {
		return nil, nil, d, 0, 0, 0, false, err
	}
	j.setIdentity(runID, epoch)

	if m.cfg.SpawnWorker == nil {
		return nil, nil, d, 0, 0, 0, false, errors.New("server: no SpawnWorker configured")
	}

	lis, err := comms.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, d, 0, 0, 0, false, err
	}
	addr := comms.DialableAddr(lis.Addr())
	m.cfg.Logf("server: %s coordinating %d tasks on %s (run %s epoch %d)",
		shortID(j.ID), total, addr, runID, epoch)

	var children sync.WaitGroup
	ws := s.WorkerVariant()
	for i := 0; i < s.Exec.Workers; i++ {
		children.Add(1)
		go func(i int) {
			defer children.Done()
			if werr := m.cfg.SpawnWorker(ctx, addr, ws); werr != nil && ctx.Err() == nil {
				// A dead worker is tolerated: its leases re-dispatch.
				m.cfg.Logf("server: %s worker %d exited: %v", shortID(j.ID), i, werr)
			}
		}(i)
	}

	report, err := distrib.Serve(ctx, lis, nBias, nK, nE, distrib.Options{
		LeaseTimeout: s.Exec.LeaseTimeout.Std(),
		DrainTimeout: s.Exec.DrainTimeout.Std(),
		Shards:       s.Exec.Shards,
		WireFormat:   s.Exec.WireFormat,
		Journal:      jnl,
		Restore:      plan.Restore,
		Quarantine:   s.Resilience.Quarantine,
		OnProgress:   j.setProgress,
		// OnResult wakes streams the moment a result commits to the
		// journal — the SSE tail polls on this signal instead of a timer.
		OnResult: func(cluster.Task, []byte) { j.ping() },
		SpecHash: s.SpecHash(),
		RunID:    runID,
		Epoch:    epoch,
		Drain:    j.drainChan(),
	})
	children.Wait()
	if report != nil {
		d = report.Perf
		workers, redisp = report.Workers, report.Redispatched
		if report.Sweep != nil {
			rep = report.Sweep
			restored = report.Sweep.Restored
		}
	}
	if err != nil {
		return nil, rep, d, workers, redisp, restored, false, err
	}
	return plan.Assemble(report.Sweep), report.Sweep, d, workers, redisp, restored, false, nil
}

// drainChan exposes the job's drain channel to distrib.Options.
func (j *Job) drainChan() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.drain
}

// replay serves a job entirely from its journal: one verified record
// per task, restored into the plan and assembled, flop totals re-summed
// from the journaled per-task perf deltas. ok is false when the journal
// does not cover the grid (the caller falls through to a live run).
func (m *Manager) replay(jnl *cluster.FileJournal, plan *core.TransmissionPlan, total int) (sweep *core.TransmissionSweep, d perf.Snapshot, ok bool, err error) {
	recs, err := jnl.Load()
	if err != nil {
		return nil, d, false, err
	}
	first := make(map[int]cluster.TaskRecord, len(recs))
	for _, rec := range recs {
		if rec.Index < 0 || rec.Index >= total {
			continue
		}
		if _, dup := first[rec.Index]; !dup {
			first[rec.Index] = rec
		}
	}
	if len(first) < total {
		return nil, d, false, nil
	}
	_, nK, nE := plan.Dims()
	for idx := 0; idx < total; idx++ {
		rec := first[idx]
		if rerr := plan.Restore(cluster.TaskAt(idx, nK, nE), rec.Payload); rerr != nil {
			return nil, d, false, fmt.Errorf("replay task %d: %w", idx, rerr)
		}
		if rec.Perf != nil {
			d.Add(*rec.Perf)
		}
	}
	rep := &cluster.SweepReport{Total: total, Restored: total}
	return plan.Assemble(rep), d, true, nil
}

// shortID abbreviates a job ID for logs.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
