// Package buildinfo reports the binary's version: the module version
// and the VCS revision the Go toolchain embeds at link time. Every cmd/
// binary exposes it behind -version, and the job service serves it in
// /healthz so operators can audit what a fleet is actually running.
package buildinfo

import "runtime/debug"

// Version returns a one-line version string: the module version (or
// "devel" for an untagged build) followed by the abbreviated VCS
// revision, with "+dirty" appended when the working tree had local
// modifications at build time.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown (built without module support)"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return v
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return v + " " + rev
}
