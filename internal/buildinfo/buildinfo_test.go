package buildinfo

import "testing"

// TestVersionNonEmpty: whatever the build environment, Version returns
// something an operator can print — never an empty string.
func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() returned an empty string")
	}
}
