package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/distrib"
	"repro/internal/spec"
)

// workerArgs is the argv (minus argv[0]) a self-spawned worker is
// launched with: the dial address plus the one serialized spec that
// fully describes its run. No per-flag mirroring — a worker cannot
// drift from the coordinator because it is launched with the
// coordinator's own spec (in its worker variant: no journal, width-1
// pool for exact flop merging; same content hash).
func workerArgs(s spec.RunSpec, dialAddr string) ([]string, error) {
	wj, err := s.WorkerVariant().Canonical()
	if err != nil {
		return nil, err
	}
	return []string{"-worker", dialAddr, "-spec-json", string(wj)}, nil
}

// runServeMode runs the transmission sweep as the coordinator of a
// distributed run: it owns the task grid, the checkpoint journal (opened
// with fsync — the coordinator's journal is the cluster's source of
// truth), and the assembly of worker results into observables. Workers
// connect over TCP; optionally this process spawns its own.
func runServeMode(ctx context.Context, b *spec.Built, addr string, prog *progress) error {
	s := b.Spec
	plan, err := b.Sim.PlanTransmission(b.Grid, nil)
	if err != nil {
		return err
	}
	nBias, nK, nE := plan.Dims()

	opts := distrib.Options{
		LeaseTimeout: s.Exec.LeaseTimeout.Std(),
		Restore:      plan.Restore,
		Quarantine:   s.Resilience.Quarantine,
		OnProgress:   prog.set,
		SpecHash:     s.SpecHash(),
	}
	j, closeJournal, err := openJournal(s, cluster.WithFsync())
	if err != nil {
		return err
	}
	if j != nil {
		defer closeJournal()
		opts.Journal = j
	}

	lis, err := comms.TCP{}.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "omen: coordinating %d tasks on %s\n", nBias*nK*nE, lis.Addr())

	var children sync.WaitGroup
	selfWorkers := s.Exec.Workers
	if selfWorkers == 0 {
		// In serve mode -workers means self-spawned worker processes, and
		// zero of them is a legitimate deployment (external workers dial
		// in) — but without this notice a bare `omen -serve` looks hung.
		fmt.Fprintf(os.Stderr, "omen: no self-spawned workers (-workers 0); waiting for external `omen -worker %s` processes to connect\n",
			comms.DialableAddr(lis.Addr()))
	}
	if selfWorkers > 0 {
		args, err := workerArgs(s, comms.DialableAddr(lis.Addr()))
		if err != nil {
			lis.Close()
			return err
		}
		for i := 0; i < selfWorkers; i++ {
			cmd := exec.CommandContext(ctx, os.Args[0], args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				lis.Close()
				return fmt.Errorf("spawn worker: %w", err)
			}
			children.Add(1)
			go func(cmd *exec.Cmd, i int) {
				defer children.Done()
				if err := cmd.Wait(); err != nil {
					// A dead worker is tolerated, not fatal: its leases are
					// re-dispatched. Note it for the operator and move on.
					fmt.Fprintf(os.Stderr, "omen: worker %d exited: %v\n", i, err)
				}
			}(cmd, i)
		}
	}

	rep, err := distrib.Serve(ctx, lis, nBias, nK, nE, opts)
	children.Wait()
	if err != nil {
		return err
	}

	sweep := plan.Assemble(rep.Sweep)
	printSweepSummary(rep.Sweep)
	fmt.Printf("# cluster: %d workers, %d leases re-dispatched\n", rep.Workers, rep.Redispatched)
	fmt.Printf("# flops\t%d\n", rep.Perf.Flops)
	printSigmaCache(rep.Perf.Counters)
	fmt.Println("# E(eV)\tT(E)")
	for i, e := range sweep.Energies {
		fmt.Printf("%.6f\t%.8g\n", e, sweep.T[i])
	}
	return nil
}

// runWorkerMode runs the transmission sweep as one worker of a
// distributed run: dial the coordinator (with patience — workers often
// start first), pull task leases, solve them on the local pool, report
// results. The process exits cleanly when the coordinator declares the
// sweep done or hangs up; a coordinator running a different spec
// rejects this worker at the handshake (and vice versa).
func runWorkerMode(ctx context.Context, b *spec.Built, addr string) error {
	plan, err := b.Sim.PlanTransmission(b.Grid, nil)
	if err != nil {
		return err
	}
	nBias, nK, nE := plan.Dims()
	conn, err := comms.DialRetry(ctx, comms.TCP{}, addr, 30*time.Second)
	if err != nil {
		return err
	}
	host, _ := os.Hostname()
	return distrib.RunWorker(ctx, conn, nBias, nK, nE, distrib.WorkerOptions{
		ID:       fmt.Sprintf("%s-%d", host, os.Getpid()),
		Pool:     plan.Pool(),
		Retry:    b.RetryPolicy(),
		Injector: b.Injector(),
		SpecHash: b.Spec.SpecHash(),
	}, plan.Run)
}
