package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/resilience"
	"repro/internal/spec"
)

// workerArgs is the argv (minus argv[0]) a self-spawned worker is
// launched with: the dial address plus the one serialized spec that
// fully describes its run. No per-flag mirroring — a worker cannot
// drift from the coordinator because it is launched with the
// coordinator's own spec (in its worker variant: no journal, width-1
// pool for exact flop merging; same content hash).
func workerArgs(s spec.RunSpec, dialAddr string) ([]string, error) {
	wj, err := s.WorkerVariant().Canonical()
	if err != nil {
		return nil, err
	}
	return []string{"-worker", dialAddr, "-spec-json", string(wj)}, nil
}

// runServeMode runs the transmission sweep as the coordinator of a
// distributed run: it owns the task grid, the checkpoint journal (opened
// with fsync — the coordinator's journal is the cluster's source of
// truth), and the assembly of worker results into observables. Workers
// connect over TCP; optionally this process spawns its own.
//
// With a journal the coordinator is crash-recoverable: a panic or an
// unexpected serve failure restarts it in place on the same address
// under a bumped epoch (see superviseServe), and a SIGTERM drains it
// gracefully — no new leases, in-flight results accepted for
// -drain-timeout, then a resumable exit with status 143.
func runServeMode(ctx context.Context, b *spec.Built, addr string, shardHold time.Duration, prog *progress) error {
	s := b.Spec
	plan, err := b.Sim.PlanTransmission(b.Grid, nil)
	if err != nil {
		return err
	}
	nBias, nK, nE := plan.Dims()

	opts := distrib.Options{
		LeaseTimeout: s.Exec.LeaseTimeout.Std(),
		DrainTimeout: s.Exec.DrainTimeout.Std(),
		Restore:      plan.Restore,
		Quarantine:   s.Resilience.Quarantine,
		OnProgress:   prog.set,
		SpecHash:     s.SpecHash(),
		Shards:       s.Exec.Shards,
		WireFormat:   s.Exec.WireFormat,
		ShardHold:    shardHold,
	}
	j, closeJournal, err := openJournal(s, cluster.WithFsync())
	if err != nil {
		return err
	}
	if j != nil {
		defer closeJournal()
		opts.Journal = j
		// The failover fencing identity lives in the journal: the RunID
		// pins rejoining workers to this run instance, the epoch fences
		// out results produced under a previous coordinator incarnation.
		// A resumed journal bumps the epoch — the incarnation it replaces
		// is dead by definition, and anything still in flight from it must
		// not be double-counted.
		if h, herr := j.ReadHeader(); herr == nil && h != nil {
			opts.RunID = h.RunID
		}
		epoch, eerr := j.LatestEpoch()
		if s.Resilience.Resume {
			epoch, eerr = j.BumpEpoch()
		}
		if eerr != nil {
			return eerr
		}
		opts.Epoch = epoch
		fmt.Fprintf(os.Stderr, "omen: run %s epoch %d\n", opts.RunID, opts.Epoch)
	}

	// SIGTERM is the graceful-drain signal (SIGINT stays the hard
	// cooperative cancel): stop granting leases, keep accepting results
	// already in flight, fsync the journal, exit resumable.
	drain := make(chan struct{})
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM)
	defer signal.Stop(sigC)
	go func() {
		<-sigC
		fmt.Fprintf(os.Stderr, "omen: SIGTERM — draining (accepting in-flight results for up to %v)\n",
			opts.DrainTimeout)
		close(drain)
	}()
	opts.Drain = drain

	lis, err := comms.TCP{}.Listen(addr)
	if err != nil {
		return err
	}
	// The concrete dialable address is captured once: a restarted
	// incarnation must come back on the same address the workers' rejoin
	// loops are re-dialing ("addr" may carry port 0).
	liveAddr := comms.DialableAddr(lis.Addr())
	fmt.Fprintf(os.Stderr, "omen: %s — coordinating %d tasks on %s\n", s.Summary(), nBias*nK*nE, lis.Addr())

	var children sync.WaitGroup
	selfWorkers := s.Exec.Workers
	if selfWorkers == 0 {
		// In serve mode -workers means self-spawned worker processes, and
		// zero of them is a legitimate deployment (external workers dial
		// in) — but without this notice a bare `omen -serve` looks hung.
		fmt.Fprintf(os.Stderr, "omen: no self-spawned workers (-workers 0); waiting for external `omen -worker %s` processes to connect\n",
			liveAddr)
	}
	if selfWorkers > 0 {
		args, err := workerArgs(s, liveAddr)
		if err != nil {
			lis.Close()
			return err
		}
		for i := 0; i < selfWorkers; i++ {
			cmd := exec.CommandContext(ctx, os.Args[0], args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				lis.Close()
				return fmt.Errorf("spawn worker: %w", err)
			}
			children.Add(1)
			go func(cmd *exec.Cmd, i int) {
				defer children.Done()
				if err := cmd.Wait(); err != nil {
					// A dead worker is tolerated, not fatal: its leases are
					// re-dispatched. Note it for the operator and move on.
					fmt.Fprintf(os.Stderr, "omen: worker %d exited: %v\n", i, err)
				}
			}(cmd, i)
		}
	}

	rep, err := superviseServe(ctx, lis, liveAddr, nBias, nK, nE, j, opts)
	children.Wait()
	if errors.Is(err, distrib.ErrDrained) {
		// Deliberately resumable: every committed result is journaled, and
		// 143 (128+SIGTERM) tells the supervisor upstream this was the
		// graceful path, not a crash. os.Exit skips the deferred cleanups,
		// so flush them here.
		stopProfiles()
		closeJournal()
		fmt.Fprintf(os.Stderr, "omen: drained — completed %d/%d tasks; rerun with -resume to finish\n",
			prog.done.Load(), prog.total.Load())
		os.Exit(143)
	}
	if err != nil {
		return err
	}

	sweep := plan.Assemble(rep.Sweep)
	extra := []string{fmt.Sprintf("# cluster: %d workers, %d leases re-dispatched", rep.Workers, rep.Redispatched)}
	if rep.Shards > 1 {
		// Only sharded runs print the line, so single-shard drill output
		// stays byte-identical across this feature's introduction.
		extra = append(extra, fmt.Sprintf("# shards: %d, steals: %d", rep.Shards, rep.Steals))
	}
	core.WriteSweep(os.Stdout, sweep, rep.Perf, extra...)
	return nil
}

// superviseServe runs distrib.Serve under a crash supervisor. With a
// journal on disk a coordinator failure — a panic in the serve path or
// an unexpected error — is survivable: every committed result is already
// journaled, so the coordinator restarts in place (same address, bumped
// epoch) and the sweep continues with whatever workers rejoin. Context
// cancellation, graceful drains, and journal-less runs pass straight
// through: without a journal a restart would silently redo work.
func superviseServe(ctx context.Context, lis net.Listener, liveAddr string, nBias, nK, nE int, j *cluster.FileJournal, opts distrib.Options) (*distrib.Report, error) {
	const maxRestarts = 3
	for attempt := 0; ; attempt++ {
		var rep *distrib.Report
		err := resilience.Call(ctx, func(ctx context.Context) error {
			var serr error
			rep, serr = distrib.Serve(ctx, lis, nBias, nK, nE, opts)
			return serr
		})
		switch {
		case err == nil:
			return rep, nil
		case errors.Is(err, distrib.ErrDrained):
			return rep, err
		case ctx.Err() != nil || j == nil || attempt >= maxRestarts:
			return rep, err
		}
		fmt.Fprintf(os.Stderr, "omen: coordinator failed (%v); restarting in place (%d/%d)\n",
			err, attempt+1, maxRestarts)
		// Serve closed the listener on its way down; reopen the captured
		// address so the workers' rejoin dials land on the incarnation
		// replacing the one that died, and bump the epoch so any result
		// still in flight from the dead incarnation is fenced out instead
		// of double-counted. The restarted Serve re-seeds its done set
		// (and re-sums the flop deltas) from the journal.
		lis.Close()
		nl, lerr := comms.TCP{}.Listen(liveAddr)
		if lerr != nil {
			return rep, fmt.Errorf("restart after %v: %w", err, lerr)
		}
		lis = nl
		epoch, eerr := j.BumpEpoch()
		if eerr != nil {
			lis.Close()
			return rep, fmt.Errorf("restart after %v: %w", err, eerr)
		}
		opts.Epoch = epoch
	}
}

// runWorkerMode runs the transmission sweep as one worker of a
// distributed run: dial the coordinator (with patience — workers often
// start first), pull task leases, solve them on the local pool, report
// results. The process exits cleanly only when the coordinator dismisses
// it with an explicit done; a hangup before that means the coordinator
// crashed, and with -rejoin-window set the worker re-dials the same
// address (jittered backoff), re-handshakes under the pinned run ID, and
// resumes pulling leases under the replacement's epoch. A coordinator
// running a different spec rejects this worker at the handshake (and
// vice versa).
func runWorkerMode(ctx context.Context, b *spec.Built, addr string) error {
	plan, err := b.Sim.PlanTransmission(b.Grid, nil)
	if err != nil {
		return err
	}
	nBias, nK, nE := plan.Dims()
	fmt.Fprintf(os.Stderr, "omen: %s — worker dialing %s\n", b.Spec.Summary(), addr)
	conn, err := comms.DialRetry(ctx, comms.TCP{}, addr, 30*time.Second)
	if err != nil {
		return err
	}
	host, _ := os.Hostname()
	rejoin := b.Spec.Exec.RejoinWindow.Std()
	return distrib.RunWorker(ctx, conn, nBias, nK, nE, distrib.WorkerOptions{
		ID:   fmt.Sprintf("%s-%d", host, os.Getpid()),
		Pool: plan.Pool(),
		// Batched leases amortize the request/grant round-trip over
		// several tasks per width-1 pool; the coalesced uploads piggyback
		// on the same batch size.
		Capacity:     distrib.DefaultLeaseBatch,
		WireFormat:   b.Spec.Exec.WireFormat,
		Retry:        b.RetryPolicy(),
		Injector:     b.Injector(),
		SpecHash:     b.Spec.SpecHash(),
		RejoinWindow: rejoin,
		Dial: func(ctx context.Context) (net.Conn, error) {
			return comms.DialRetry(ctx, comms.TCP{}, addr, rejoin)
		},
		OnRejoin: func() {
			// Everything computed under the dead epoch is fenced out by the
			// new coordinator, and a warm σ-cache would let the re-dispatched
			// twins of that work skip the decimation flops the serial run
			// counts — reset so the merged flop total stays exact.
			if b.Cache != nil {
				b.Cache.Reset()
			}
		},
	}, plan.Run)
}
