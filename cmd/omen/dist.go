package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/resilience"
)

// serveConfig carries the coordinator-side CLI selections into
// runServeMode.
type serveConfig struct {
	addr         string
	selfWorkers  int // worker processes to spawn from this binary (0: external workers only)
	leaseTimeout time.Duration
	checkpoint   string
	resume       bool
	quarantine   bool
	// childArgs builds the argv (minus argv[0]) a self-spawned worker is
	// launched with, given the coordinator's dialable address.
	childArgs func(dialAddr string) []string
	prog      *progress
}

// runServeMode runs the transmission sweep as the coordinator of a
// distributed run: it owns the task grid, the checkpoint journal (opened
// with fsync — the coordinator's journal is the cluster's source of
// truth), and the assembly of worker results into observables. Workers
// connect over TCP; optionally this process spawns its own.
func runServeMode(ctx context.Context, sim *core.Simulator, grid []float64, cfg serveConfig) error {
	plan, err := sim.PlanTransmission(grid, nil)
	if err != nil {
		return err
	}
	nBias, nK, nE := plan.Dims()

	opts := distrib.Options{
		LeaseTimeout: cfg.leaseTimeout,
		Restore:      plan.Restore,
		Quarantine:   cfg.quarantine,
		OnProgress:   cfg.prog.set,
	}
	if cfg.checkpoint != "" {
		if !cfg.resume {
			if _, err := os.Stat(cfg.checkpoint); err == nil {
				return fmt.Errorf("journal %s exists; pass -resume to continue it or remove the file", cfg.checkpoint)
			}
		}
		j, err := cluster.OpenFileJournal(cfg.checkpoint, cluster.WithFsync())
		if err != nil {
			return err
		}
		defer j.Close()
		opts.Journal = j
	} else if cfg.resume {
		return errors.New("-resume requires -checkpoint")
	}

	lis, err := comms.TCP{}.Listen(cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "omen: coordinating %d tasks on %s\n", nBias*nK*nE, lis.Addr())

	var children sync.WaitGroup
	if cfg.selfWorkers == 0 {
		// In serve mode -workers means self-spawned worker processes, and
		// zero of them is a legitimate deployment (external workers dial
		// in) — but without this notice a bare `omen -serve` looks hung.
		fmt.Fprintf(os.Stderr, "omen: no self-spawned workers (-workers 0); waiting for external `omen -worker %s` processes to connect\n",
			comms.DialableAddr(lis.Addr()))
	}
	if cfg.selfWorkers > 0 {
		args := cfg.childArgs(comms.DialableAddr(lis.Addr()))
		for i := 0; i < cfg.selfWorkers; i++ {
			cmd := exec.CommandContext(ctx, os.Args[0], args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				lis.Close()
				return fmt.Errorf("spawn worker: %w", err)
			}
			children.Add(1)
			go func(cmd *exec.Cmd, i int) {
				defer children.Done()
				if err := cmd.Wait(); err != nil {
					// A dead worker is tolerated, not fatal: its leases are
					// re-dispatched. Note it for the operator and move on.
					fmt.Fprintf(os.Stderr, "omen: worker %d exited: %v\n", i, err)
				}
			}(cmd, i)
		}
	}

	rep, err := distrib.Serve(ctx, lis, nBias, nK, nE, opts)
	children.Wait()
	if err != nil {
		return err
	}

	sweep := plan.Assemble(rep.Sweep)
	printSweepSummary(rep.Sweep)
	fmt.Printf("# cluster: %d workers, %d leases re-dispatched\n", rep.Workers, rep.Redispatched)
	fmt.Printf("# flops\t%d\n", rep.Perf.Flops)
	printSigmaCache(rep.Perf.Counters)
	fmt.Println("# E(eV)\tT(E)")
	for i, e := range sweep.Energies {
		fmt.Printf("%.6f\t%.8g\n", e, sweep.T[i])
	}
	return nil
}

// runWorkerMode runs the transmission sweep as one worker of a
// distributed run: dial the coordinator (with patience — workers often
// start first), pull task leases, solve them on the local pool, report
// results. The process exits cleanly when the coordinator declares the
// sweep done or hangs up.
func runWorkerMode(ctx context.Context, sim *core.Simulator, grid []float64, addr string, retry resilience.Policy, injector *resilience.Injector) error {
	plan, err := sim.PlanTransmission(grid, nil)
	if err != nil {
		return err
	}
	nBias, nK, nE := plan.Dims()
	conn, err := comms.DialRetry(ctx, comms.TCP{}, addr, 30*time.Second)
	if err != nil {
		return err
	}
	host, _ := os.Hostname()
	return distrib.RunWorker(ctx, conn, nBias, nK, nE, distrib.WorkerOptions{
		ID:       fmt.Sprintf("%s-%d", host, os.Getpid()),
		Pool:     plan.Pool(),
		Retry:    retry,
		Injector: injector,
	}, plan.Run)
}
