// Command omen is the device-simulation driver: it builds one of the
// benchmark devices, computes its transmission spectrum (and optionally a
// self-consistent gate sweep), and prints tab-separated results suitable
// for plotting.
//
// Every run is described by one serializable spec.RunSpec. The flags
// below are a thin parser for it: they overlay a base spec (the built-in
// defaults, or a file given with -spec), and -dump-spec prints the fully
// resolved spec plus its content hashes and exits. Distributed child
// workers are launched with the serialized spec itself (-spec-json), so
// no per-flag argv mirroring can drift; the coordinator/worker handshake
// and the checkpoint journal both carry the spec's content hash, so a
// mismatched worker or a -resume against a foreign journal fails loudly.
//
// Transmission sweeps run on the fault-tolerant sweep engine: per-task
// retries with backoff (-max-retries, -task-timeout), checkpoint/restart
// through an append-only journal (-checkpoint, -resume), graceful
// degradation of unsalvageable energy points (-quarantine), and
// deterministic fault injection for failure drills (-fault-rate,
// -fault-seed). An interrupt (SIGINT) cancels the sweep cooperatively,
// prints a partial-progress summary, and exits non-zero; with a journal,
// rerunning with -resume picks up where the interrupt landed.
//
// Examples:
//
//	omen -device agnr7 -mode transmission -emin -3 -emax 3 -ne 200
//	omen -device sinw -mode iv -vd 0.2 -vgmin -0.4 -vgmax 0.6 -nvg 11
//	omen -device agnr7 -checkpoint sweep.journal -max-retries 3 -fault-rate 0.1
//	omen -device agnr7 -checkpoint sweep.journal -resume
//	omen -spec run.json
//	omen -spec run.json -ne 500 -dump-spec
//	omen -device sinw-full -mode stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/spec"
)

// progress tracks completed/total tasks for the interrupt summary.
type progress struct {
	done, total atomic.Int64
}

func (p *progress) set(done, total int) {
	p.done.Store(int64(done))
	p.total.Store(int64(total))
}

func main() {
	def := spec.Default()
	var (
		specPath = flag.String("spec", "", "load the run spec from this JSON file; flags set on the command line override its fields")
		specJSON = flag.String("spec-json", "", "inline JSON run spec (how a coordinator launches self-spawned workers); mutually exclusive with -spec")
		dumpSpec = flag.Bool("dump-spec", false, "print the fully resolved run spec (canonical JSON plus content hashes) and exit")
		version  = flag.Bool("version", false, "print the build version (module version plus VCS revision) and exit")

		devName   = flag.String("device", def.Device.Name, "device: "+strings.Join(device.Names(), ", "))
		mode      = flag.String("mode", def.Mode, "mode: transmission, iv, stats")
		formalism = flag.String("formalism", def.Solver.Formalism, "single-energy solver: wf, negf")
		domains   = flag.Int("domains", def.Solver.Domains, "SplitSolve spatial domains (wf only)")
		nk        = flag.Int("nk", def.Grid.NK, "transverse momentum points (periodic devices)")
		emin      = flag.Float64("emin", def.Grid.EMin, "spectrum lower bound (eV)")
		emax      = flag.Float64("emax", def.Grid.EMax, "spectrum upper bound (eV)")
		ne        = flag.Int("ne", def.Grid.NE, "energy points")
		vd        = flag.Float64("vd", def.Grid.VDrain, "drain bias (V) for iv mode")
		vgMin     = flag.Float64("vgmin", def.Grid.VGMin, "gate sweep start (V)")
		vgMax     = flag.Float64("vgmax", def.Grid.VGMax, "gate sweep end (V)")
		nvg       = flag.Int("nvg", def.Grid.NVG, "gate sweep points")
		cellsX    = flag.Int("cellsx", 0, "override transport cells")
		workers   = flag.Int("workers", def.Exec.Workers, "total worker budget across all parallel levels (0: GOMAXPROCS); with -serve: worker processes to self-spawn (0: wait for external -worker processes)")

		solveBatch = flag.Int("solve-batch", def.Exec.SolveBatch, "energies solved per batched kernel call (0 or 1: solve one energy at a time); a pure executor knob that never changes results")

		serveAddr    = flag.String("serve", "", "run as distributed-sweep coordinator listening on this TCP address (transmission mode); workers connect with -worker")
		workerAddr   = flag.String("worker", "", "run as distributed-sweep worker dialing the coordinator at this TCP address (transmission mode)")
		leaseTimeout = flag.Duration("lease-timeout", def.Exec.LeaseTimeout.Std(), "coordinator: how long a worker may hold a task lease before it is re-dispatched")
		rejoinWindow = flag.Duration("rejoin-window", def.Exec.RejoinWindow.Std(), "worker: keep re-dialing for this long after losing the coordinator mid-sweep before giving up (0: a coordinator crash ends the worker)")
		drainTimeout = flag.Duration("drain-timeout", def.Exec.DrainTimeout.Std(), "coordinator: on SIGTERM, stop granting leases and accept in-flight results for up to this long before exiting with a resumable journal")
		shards       = flag.Int("shards", def.Exec.Shards, "coordinator: partition the task grid across this many scheduling shards; idle shards steal capacity-sized batches from loaded ones (0 or 1: single queue)")
		wireFormat   = flag.String("wire", def.Exec.WireFormat, "coordinator/worker wire format for hot messages: binary (compact, default) or json (v3-compatible); pure transport knob, results are bitwise identical")
		shardHold    = flag.Duration("shard-hold", 0, "coordinator failure drill: freeze shard-0-homed workers for this long after startup so other shards demonstrably steal their work (requires -shards >= 2)")

		checkpoint  = flag.String("checkpoint", def.Resilience.Checkpoint, "sweep journal file for checkpoint/restart (transmission mode)")
		resume      = flag.Bool("resume", def.Resilience.Resume, "resume from an existing -checkpoint journal, rerunning only unfinished tasks")
		maxRetries  = flag.Int("max-retries", def.Resilience.MaxRetries, "retries per task after the first attempt (exponential backoff)")
		taskTimeout = flag.Duration("task-timeout", def.Resilience.TaskTimeout.Std(), "per-attempt deadline for one task (0: none)")
		quarantine  = flag.Bool("quarantine", def.Resilience.Quarantine, "after retries are exhausted, drop the failed point and renormalize instead of failing the sweep")
		faultRate   = flag.Float64("fault-rate", def.Resilience.FaultRate, "fault-injection drill: fraction of tasks that fail (mixed errors and panics) on their first attempt")
		faultSeed   = flag.Uint64("fault-seed", def.Resilience.FaultSeed, "seed for deterministic fault injection and retry jitter")

		cacheCap   = flag.Int("sigma-cache-cap", def.Solver.SigmaCacheCap, "self-energy cache capacity in entries, one per (lead, shifted energy); 0: unbounded")
		seedRefine = flag.Float64("seed-refine", def.Solver.SeedRefine, "seed the surface-GF fixed point from a cached neighbor within this energy distance (eV) instead of decimating; 0 disables and keeps results bitwise reproducible")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (pprof format) to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (pprof format) to this file on exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("omen %s\n", buildinfo.Version())
		return
	}

	// Resolve the run spec: base (defaults or -spec file or -spec-json),
	// then overlay every flag explicitly set on the command line.
	s := def
	switch {
	case *specPath != "" && *specJSON != "":
		usageErr(errors.New("-spec and -spec-json are mutually exclusive"))
	case *specPath != "":
		var err error
		if s, err = spec.LoadFile(*specPath); err != nil {
			usageErr(err)
		}
	case *specJSON != "":
		var err error
		if s, err = spec.Parse([]byte(*specJSON)); err != nil {
			usageErr(err)
		}
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "device":
			s.Device.Name = *devName
		case "mode":
			s.Mode = *mode
		case "formalism":
			s.Solver.Formalism = *formalism
		case "domains":
			s.Solver.Domains = *domains
		case "nk":
			s.Grid.NK = *nk
		case "emin":
			s.Grid.EMin = *emin
		case "emax":
			s.Grid.EMax = *emax
		case "ne":
			s.Grid.NE = *ne
		case "vd":
			s.Grid.VDrain = *vd
		case "vgmin":
			s.Grid.VGMin = *vgMin
		case "vgmax":
			s.Grid.VGMax = *vgMax
		case "nvg":
			s.Grid.NVG = *nvg
		case "cellsx":
			s.Device.CellsX = *cellsX
		case "workers":
			s.Exec.Workers = *workers
		case "solve-batch":
			s.Exec.SolveBatch = *solveBatch
		case "lease-timeout":
			s.Exec.LeaseTimeout = spec.Duration(*leaseTimeout)
		case "rejoin-window":
			s.Exec.RejoinWindow = spec.Duration(*rejoinWindow)
		case "drain-timeout":
			s.Exec.DrainTimeout = spec.Duration(*drainTimeout)
		case "shards":
			s.Exec.Shards = *shards
		case "wire":
			s.Exec.WireFormat = *wireFormat
		case "checkpoint":
			s.Resilience.Checkpoint = *checkpoint
		case "resume":
			s.Resilience.Resume = *resume
		case "max-retries":
			s.Resilience.MaxRetries = *maxRetries
		case "task-timeout":
			s.Resilience.TaskTimeout = spec.Duration(*taskTimeout)
		case "quarantine":
			s.Resilience.Quarantine = *quarantine
		case "fault-rate":
			s.Resilience.FaultRate = *faultRate
		case "fault-seed":
			s.Resilience.FaultSeed = *faultSeed
		case "sigma-cache-cap":
			s.Solver.SigmaCacheCap = *cacheCap
		case "seed-refine":
			s.Solver.SeedRefine = *seedRefine
		}
	})

	if *dumpSpec {
		if err := s.Validate(); err != nil {
			usageErr(err)
		}
		printSpec(s)
		return
	}

	if *serveAddr != "" && *workerAddr != "" {
		usageErr(errors.New("-serve and -worker are mutually exclusive"))
	}
	role := spec.RoleLocal
	switch {
	case *serveAddr != "":
		role = spec.RoleCoordinator
	case *workerAddr != "":
		role = spec.RoleWorker
	}
	if err := s.ValidateFor(role); err != nil {
		usageErr(err)
	}

	if err := startProfiles(*cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "omen:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	// Interrupts cancel the in-flight solves cooperatively through ctx; the
	// summary printed on exit reports how far the sweep got.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var prog progress

	b, err := spec.Build(s)
	if err != nil {
		fatal(ctx, &prog, err)
	}

	switch s.Mode {
	case spec.ModeStats:
		st := b.Sim.Stats()
		fmt.Printf("device\t%s (%s)\n", st.Name, st.Kind)
		fmt.Printf("atoms\t%d\nlayers\t%d\norbitals/atom\t%d\n", st.Atoms, st.Layers, st.OrbitalsAtom)
		fmt.Printf("matrix order\t%d\nlayer block\t%d\nlength\t%.2f nm\n",
			st.MatrixOrder, st.BlockSize, st.TransportLen)
	case spec.ModeTransmission:
		if *workerAddr != "" {
			if err := runWorkerMode(ctx, b, *workerAddr); err != nil {
				fatal(ctx, &prog, err)
			}
			return
		}
		if *serveAddr != "" {
			if err := runServeMode(ctx, b, *serveAddr, *shardHold, &prog); err != nil {
				fatal(ctx, &prog, err)
			}
			return
		}
		opts, closeJournal, err := sweepOptions(b, &prog)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		defer closeJournal()
		fmt.Fprintf(os.Stderr, "omen: %s\n", s.Summary())
		before := perf.TakeSnapshot()
		sweep, err := b.Sim.TransmissionResumable(ctx, b.Grid, nil, opts)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		d := perf.TakeSnapshot().Diff(before)
		core.WriteSweep(os.Stdout, sweep, d)
	case spec.ModeIV:
		fmt.Fprintf(os.Stderr, "omen: %s\n", s.Summary())
		fet, err := core.NewFET(b.Sim)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		// GNR-friendly electrostatics defaults for the CLI devices.
		fet.Lambda = 1.2
		fet.SourceDoping = 0.1
		fet.GateStart, fet.GateEnd = 0.3, 0.7
		// One cache spans the whole sweep: the FET's lead keys and bias
		// shifts make every gate point address the same entries.
		fet.Cache = b.Cache
		vgs := b.GateGrid
		// Count finished bias points so an interrupt can report progress.
		prog.set(0, len(vgs))
		b.Pool.Hook = func(ev sched.TaskEvent) {
			if ev.Phase == "bias" && ev.Err == nil {
				prog.done.Add(1)
			}
		}
		before := perf.TakeSnapshot()
		points, err := fet.GateSweep(ctx, vgs, s.Grid.VDrain)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		d := perf.TakeSnapshot().Diff(before)
		core.WriteCounters(os.Stdout, d)
		fmt.Println("# Vg(V)\tId(A)\titers\tconverged")
		for _, p := range points {
			fmt.Printf("%.4f\t%.6e\t%d\t%v\n", p.VGate, p.Current, p.Iterations, p.Converged)
		}
	default:
		usageErr(fmt.Errorf("unknown mode %q", s.Mode))
	}
}

// printSpec emits the resolved canonical spec and its content hashes —
// the -dump-spec output the golden check in `make check` pins.
func printSpec(s spec.RunSpec) {
	b, err := s.CanonicalIndent()
	if err != nil {
		usageErr(err)
	}
	fmt.Printf("%s\n", b)
	fmt.Printf("# device-hash\t%s\n", s.DeviceHash())
	fmt.Printf("# grid-hash\t%s\n", s.GridHash())
	fmt.Printf("# solver-hash\t%s\n", s.SolverHash())
	fmt.Printf("# spec-hash\t%s\n", s.SpecHash())
}

// openJournal opens the spec's checkpoint journal through
// spec.OpenJournal (fresh journals get a spec-hash header; resumed ones
// are verified against it). Returns a no-op cleanup when the spec has no
// checkpoint.
func openJournal(s spec.RunSpec, jopts ...cluster.JournalOption) (*cluster.FileJournal, func(), error) {
	warn := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "omen: warning: "+format+"\n", args...)
	}
	j, err := spec.OpenJournal(s, warn, jopts...)
	if err != nil {
		return nil, nil, err
	}
	if j == nil {
		return nil, func() {}, nil
	}
	return j, func() { j.Close() }, nil
}

// sweepOptions assembles the fault-tolerance configuration from the
// built spec. The returned cleanup closes the journal (a no-op without
// one).
func sweepOptions(b *spec.Built, prog *progress) (cluster.SweepOptions, func(), error) {
	opts := b.SweepOptions()
	opts.OnProgress = prog.set
	j, closeJournal, err := openJournal(b.Spec)
	if err != nil {
		return opts, nil, err
	}
	if j != nil {
		opts.Journal = j
	}
	return opts, closeJournal, nil
}

// stopProfiles flushes any active CPU/heap profiles. It is safe to call
// more than once; fatal invokes it because os.Exit skips the deferred
// call in main, and losing the profile on a failed run would defeat the
// point of profiling a failure.
var stopProfiles = func() {}

// startProfiles begins CPU profiling (when cpu is non-empty) and arranges
// for a heap profile to be written at exit (when mem is non-empty),
// installing the shared stopProfiles flush.
func startProfiles(cpu, mem string) error {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuFile = f
	}
	if cpuFile == nil && mem == "" {
		return nil
	}
	var once sync.Once
	stopProfiles = func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, "omen: memprofile:", err)
					return
				}
				runtime.GC() // flush recently freed objects for an accurate live-heap picture
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "omen: memprofile:", err)
				}
				f.Close()
			}
		})
	}
	return nil
}

// usageErr reports a configuration error and exits with the
// conventional usage status.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "omen:", err)
	os.Exit(2)
}

// fatal reports err and exits non-zero. An interrupt gets the
// conventional 128+SIGINT code and a partial-progress summary so
// operators can see how much of the sweep a -resume run will skip.
func fatal(ctx context.Context, prog *progress, err error) {
	stopProfiles()
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "omen: interrupted — completed %d/%d tasks\n",
			prog.done.Load(), prog.total.Load())
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "omen:", err)
	os.Exit(1)
}
