// Command omen is the device-simulation driver: it builds one of the
// benchmark devices, computes its transmission spectrum (and optionally a
// self-consistent gate sweep), and prints tab-separated results suitable
// for plotting.
//
// Examples:
//
//	omen -device agnr7 -mode transmission -emin -3 -emax 3 -ne 200
//	omen -device sinw -mode iv -vd 0.2 -vgmin -0.4 -vgmax 0.6 -nvg 11
//	omen -device sinw-full -mode stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/transport"
)

// knownDevices maps CLI names to descriptions.
func knownDevices() map[string]device.Description {
	return map[string]device.Description{
		"chain":     {Name: "chain", Kind: device.Chain, CellsX: 20},
		"agnr7":     {Name: "AGNR-7", Kind: device.ArmchairGNR, CellsX: 20, CellsY: 7},
		"agnr13":    {Name: "AGNR-13", Kind: device.ArmchairGNR, CellsX: 20, CellsY: 13},
		"zgnr6":     {Name: "ZGNR-6", Kind: device.ZigzagGNR, CellsX: 20, CellsY: 6},
		"sinw":      {Name: "SiNW sp3s*", Kind: device.SiNanowire, CellsX: 10, CellsY: 1, CellsZ: 1},
		"sinw-full": {Name: "SiNW sp3d5s*", Kind: device.SiNanowire, CellsX: 8, CellsY: 1, CellsZ: 1, FullBand: true},
		"gaasnw":    {Name: "GaAs NW", Kind: device.GaAsNanowire, CellsX: 8, CellsY: 1, CellsZ: 1},
		"utb":       {Name: "Si UTB", Kind: device.SiUTB, CellsX: 6, CellsY: 1, CellsZ: 1},
	}
}

func main() {
	var (
		devName   = flag.String("device", "agnr7", "device: chain, agnr7, agnr13, zgnr6, sinw, sinw-full, gaasnw, utb")
		mode      = flag.String("mode", "transmission", "mode: transmission, iv, stats")
		formalism = flag.String("formalism", "wf", "single-energy solver: wf, negf")
		domains   = flag.Int("domains", 1, "SplitSolve spatial domains (wf only)")
		nk        = flag.Int("nk", 1, "transverse momentum points (periodic devices)")
		emin      = flag.Float64("emin", -3, "spectrum lower bound (eV)")
		emax      = flag.Float64("emax", 3, "spectrum upper bound (eV)")
		ne        = flag.Int("ne", 101, "energy points")
		vd        = flag.Float64("vd", 0.2, "drain bias (V) for iv mode")
		vgMin     = flag.Float64("vgmin", -0.4, "gate sweep start (V)")
		vgMax     = flag.Float64("vgmax", 0.6, "gate sweep end (V)")
		nvg       = flag.Int("nvg", 6, "gate sweep points")
		cellsX    = flag.Int("cellsx", 0, "override transport cells")
		workers   = flag.Int("workers", 0, "total worker budget across all parallel levels (0: GOMAXPROCS)")
	)
	flag.Parse()

	// Interrupts cancel the in-flight solves cooperatively through ctx.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	desc, ok := knownDevices()[*devName]
	if !ok {
		fmt.Fprintf(os.Stderr, "omen: unknown device %q\n", *devName)
		os.Exit(2)
	}
	if *cellsX > 0 {
		desc.CellsX = *cellsX
	}
	cfg := transport.Config{Domains: *domains, Workers: *workers}
	switch *formalism {
	case "wf":
		cfg.Formalism = transport.WaveFunction
	case "negf":
		cfg.Formalism = transport.NEGFRGF
	default:
		fmt.Fprintf(os.Stderr, "omen: unknown formalism %q\n", *formalism)
		os.Exit(2)
	}
	sim, err := core.New(desc, cfg)
	if err != nil {
		fatal(err)
	}
	sim.NK = *nk

	switch *mode {
	case "stats":
		st := sim.Stats()
		fmt.Printf("device\t%s (%s)\n", st.Name, st.Kind)
		fmt.Printf("atoms\t%d\nlayers\t%d\norbitals/atom\t%d\n", st.Atoms, st.Layers, st.OrbitalsAtom)
		fmt.Printf("matrix order\t%d\nlayer block\t%d\nlength\t%.2f nm\n",
			st.MatrixOrder, st.BlockSize, st.TransportLen)
	case "transmission":
		grid := transport.UniformGrid(*emin, *emax, *ne)
		ts, err := sim.Transmission(ctx, grid, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# E(eV)\tT(E)")
		for i, e := range grid {
			fmt.Printf("%.6f\t%.8g\n", e, ts[i])
		}
	case "iv":
		fet, err := core.NewFET(sim)
		if err != nil {
			fatal(err)
		}
		// GNR-friendly electrostatics defaults for the CLI devices.
		fet.Lambda = 1.2
		fet.SourceDoping = 0.1
		fet.GateStart, fet.GateEnd = 0.3, 0.7
		vgs := transport.UniformGrid(*vgMin, *vgMax, *nvg)
		points, err := fet.GateSweep(ctx, vgs, *vd)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# Vg(V)\tId(A)\titers\tconverged")
		for _, p := range points {
			fmt.Printf("%.4f\t%.6e\t%d\t%v\n", p.VGate, p.Current, p.Iterations, p.Converged)
		}
	default:
		fmt.Fprintf(os.Stderr, "omen: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "omen:", err)
	os.Exit(1)
}
