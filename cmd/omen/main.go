// Command omen is the device-simulation driver: it builds one of the
// benchmark devices, computes its transmission spectrum (and optionally a
// self-consistent gate sweep), and prints tab-separated results suitable
// for plotting.
//
// Transmission sweeps run on the fault-tolerant sweep engine: per-task
// retries with backoff (-max-retries, -task-timeout), checkpoint/restart
// through an append-only journal (-checkpoint, -resume), graceful
// degradation of unsalvageable energy points (-quarantine), and
// deterministic fault injection for failure drills (-fault-rate,
// -fault-seed). An interrupt (SIGINT) cancels the sweep cooperatively,
// prints a partial-progress summary, and exits non-zero; with a journal,
// rerunning with -resume picks up where the interrupt landed.
//
// Examples:
//
//	omen -device agnr7 -mode transmission -emin -3 -emax 3 -ne 200
//	omen -device sinw -mode iv -vd 0.2 -vgmin -0.4 -vgmax 0.6 -nvg 11
//	omen -device agnr7 -checkpoint sweep.journal -max-retries 3 -fault-rate 0.1
//	omen -device agnr7 -checkpoint sweep.journal -resume
//	omen -device sinw-full -mode stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/perf"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/transport"
)

// knownDevices maps CLI names to descriptions.
func knownDevices() map[string]device.Description {
	return map[string]device.Description{
		"chain":     {Name: "chain", Kind: device.Chain, CellsX: 20},
		"agnr7":     {Name: "AGNR-7", Kind: device.ArmchairGNR, CellsX: 20, CellsY: 7},
		"agnr13":    {Name: "AGNR-13", Kind: device.ArmchairGNR, CellsX: 20, CellsY: 13},
		"zgnr6":     {Name: "ZGNR-6", Kind: device.ZigzagGNR, CellsX: 20, CellsY: 6},
		"sinw":      {Name: "SiNW sp3s*", Kind: device.SiNanowire, CellsX: 10, CellsY: 1, CellsZ: 1},
		"sinw-full": {Name: "SiNW sp3d5s*", Kind: device.SiNanowire, CellsX: 8, CellsY: 1, CellsZ: 1, FullBand: true},
		"gaasnw":    {Name: "GaAs NW", Kind: device.GaAsNanowire, CellsX: 8, CellsY: 1, CellsZ: 1},
		"utb":       {Name: "Si UTB", Kind: device.SiUTB, CellsX: 6, CellsY: 1, CellsZ: 1},
	}
}

// progress tracks completed/total tasks for the interrupt summary.
type progress struct {
	done, total atomic.Int64
}

func (p *progress) set(done, total int) {
	p.done.Store(int64(done))
	p.total.Store(int64(total))
}

func main() {
	var (
		devName   = flag.String("device", "agnr7", "device: chain, agnr7, agnr13, zgnr6, sinw, sinw-full, gaasnw, utb")
		mode      = flag.String("mode", "transmission", "mode: transmission, iv, stats")
		formalism = flag.String("formalism", "wf", "single-energy solver: wf, negf")
		domains   = flag.Int("domains", 1, "SplitSolve spatial domains (wf only)")
		nk        = flag.Int("nk", 1, "transverse momentum points (periodic devices)")
		emin      = flag.Float64("emin", -3, "spectrum lower bound (eV)")
		emax      = flag.Float64("emax", 3, "spectrum upper bound (eV)")
		ne        = flag.Int("ne", 101, "energy points")
		vd        = flag.Float64("vd", 0.2, "drain bias (V) for iv mode")
		vgMin     = flag.Float64("vgmin", -0.4, "gate sweep start (V)")
		vgMax     = flag.Float64("vgmax", 0.6, "gate sweep end (V)")
		nvg       = flag.Int("nvg", 6, "gate sweep points")
		cellsX    = flag.Int("cellsx", 0, "override transport cells")
		workers   = flag.Int("workers", 0, "total worker budget across all parallel levels (0: GOMAXPROCS); with -serve: worker processes to self-spawn (0: wait for external -worker processes)")

		serveAddr    = flag.String("serve", "", "run as distributed-sweep coordinator listening on this TCP address (transmission mode); workers connect with -worker")
		workerAddr   = flag.String("worker", "", "run as distributed-sweep worker dialing the coordinator at this TCP address (transmission mode)")
		leaseTimeout = flag.Duration("lease-timeout", 30*time.Second, "coordinator: how long a worker may hold a task lease before it is re-dispatched")

		checkpoint  = flag.String("checkpoint", "", "sweep journal file for checkpoint/restart (transmission mode)")
		resume      = flag.Bool("resume", false, "resume from an existing -checkpoint journal, rerunning only unfinished tasks")
		maxRetries  = flag.Int("max-retries", 0, "retries per task after the first attempt (exponential backoff)")
		taskTimeout = flag.Duration("task-timeout", 0, "per-attempt deadline for one task (0: none)")
		quarantine  = flag.Bool("quarantine", false, "after retries are exhausted, drop the failed point and renormalize instead of failing the sweep")
		faultRate   = flag.Float64("fault-rate", 0, "fault-injection drill: fraction of tasks that fail (mixed errors and panics) on their first attempt")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for deterministic fault injection and retry jitter")

		cacheCap   = flag.Int("sigma-cache-cap", 4096, "self-energy cache capacity in entries, one per (lead, shifted energy); 0: unbounded")
		seedRefine = flag.Float64("seed-refine", 0, "seed the surface-GF fixed point from a cached neighbor within this energy distance (eV) instead of decimating; 0 disables and keeps results bitwise reproducible")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (pprof format) to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (pprof format) to this file on exit")
	)
	flag.Parse()

	if err := startProfiles(*cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "omen:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	// Interrupts cancel the in-flight solves cooperatively through ctx; the
	// summary printed on exit reports how far the sweep got.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var prog progress

	desc, ok := knownDevices()[*devName]
	if !ok {
		fmt.Fprintf(os.Stderr, "omen: unknown device %q\n", *devName)
		os.Exit(2)
	}
	if *cellsX > 0 {
		desc.CellsX = *cellsX
	}
	pool := sched.New(*workers)
	cfg := transport.Config{
		Domains: *domains,
		Pool:    pool,
		Cache: negf.NewSelfEnergyCacheWith(negf.CacheConfig{
			Capacity: *cacheCap,
			SeedDist: *seedRefine,
		}),
	}
	switch *formalism {
	case "wf":
		cfg.Formalism = transport.WaveFunction
	case "negf":
		cfg.Formalism = transport.NEGFRGF
	default:
		fmt.Fprintf(os.Stderr, "omen: unknown formalism %q\n", *formalism)
		os.Exit(2)
	}
	sim, err := core.New(desc, cfg)
	if err != nil {
		fatal(ctx, &prog, err)
	}
	sim.NK = *nk

	switch *mode {
	case "stats":
		st := sim.Stats()
		fmt.Printf("device\t%s (%s)\n", st.Name, st.Kind)
		fmt.Printf("atoms\t%d\nlayers\t%d\norbitals/atom\t%d\n", st.Atoms, st.Layers, st.OrbitalsAtom)
		fmt.Printf("matrix order\t%d\nlayer block\t%d\nlength\t%.2f nm\n",
			st.MatrixOrder, st.BlockSize, st.TransportLen)
	case "transmission":
		grid := transport.UniformGrid(*emin, *emax, *ne)
		if *serveAddr != "" && *workerAddr != "" {
			fatal(ctx, &prog, errors.New("-serve and -worker are mutually exclusive"))
		}
		if *workerAddr != "" {
			if *checkpoint != "" {
				fatal(ctx, &prog, errors.New("-checkpoint belongs to the coordinator; workers do not journal"))
			}
			retry := resilience.Policy{
				MaxAttempts:    *maxRetries + 1,
				AttemptTimeout: *taskTimeout,
				JitterFrac:     0.2,
				Seed:           *faultSeed,
			}
			var injector *resilience.Injector
			if *faultRate > 0 {
				injector = &resilience.Injector{Seed: *faultSeed, Rate: *faultRate}
			}
			if err := runWorkerMode(ctx, sim, grid, *workerAddr, retry, injector); err != nil {
				fatal(ctx, &prog, err)
			}
			return
		}
		if *serveAddr != "" {
			cfg := serveConfig{
				addr:         *serveAddr,
				selfWorkers:  *workers,
				leaseTimeout: *leaseTimeout,
				checkpoint:   *checkpoint,
				resume:       *resume,
				quarantine:   *quarantine,
				prog:         &prog,
				childArgs: func(dialAddr string) []string {
					args := []string{
						"-worker", dialAddr,
						"-mode", "transmission",
						"-device", *devName,
						"-formalism", *formalism,
						"-domains", fmt.Sprint(*domains),
						"-nk", fmt.Sprint(*nk),
						"-emin", fmt.Sprint(*emin),
						"-emax", fmt.Sprint(*emax),
						"-ne", fmt.Sprint(*ne),
						// One solve at a time per worker process keeps the
						// merged flop accounting exact (see DESIGN.md §10).
						"-workers", "1",
						"-max-retries", fmt.Sprint(*maxRetries),
						"-task-timeout", taskTimeout.String(),
						"-fault-rate", fmt.Sprint(*faultRate),
						"-fault-seed", fmt.Sprint(*faultSeed),
						"-sigma-cache-cap", fmt.Sprint(*cacheCap),
						"-seed-refine", fmt.Sprint(*seedRefine),
					}
					if *cellsX > 0 {
						args = append(args, "-cellsx", fmt.Sprint(*cellsX))
					}
					return args
				},
			}
			if err := runServeMode(ctx, sim, grid, cfg); err != nil {
				fatal(ctx, &prog, err)
			}
			return
		}
		opts, closeJournal, err := sweepOptions(pool, &prog, *checkpoint, *resume, *maxRetries, *taskTimeout, *quarantine, *faultRate, *faultSeed)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		defer closeJournal()
		before := perf.TakeSnapshot()
		sweep, err := sim.TransmissionResumable(ctx, grid, nil, opts)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		printSweepSummary(sweep.Report)
		d := perf.TakeSnapshot().Diff(before)
		fmt.Printf("# flops\t%d\n", d.Flops)
		printSigmaCache(d.Counters)
		fmt.Println("# E(eV)\tT(E)")
		for i, e := range sweep.Energies {
			fmt.Printf("%.6f\t%.8g\n", e, sweep.T[i])
		}
	case "iv":
		fet, err := core.NewFET(sim)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		// GNR-friendly electrostatics defaults for the CLI devices.
		fet.Lambda = 1.2
		fet.SourceDoping = 0.1
		fet.GateStart, fet.GateEnd = 0.3, 0.7
		// One cache spans the whole sweep: the FET's lead keys and bias
		// shifts make every gate point address the same entries.
		fet.Cache = cfg.Cache
		vgs := transport.UniformGrid(*vgMin, *vgMax, *nvg)
		// Count finished bias points so an interrupt can report progress.
		prog.set(0, len(vgs))
		pool.Hook = func(ev sched.TaskEvent) {
			if ev.Phase == "bias" && ev.Err == nil {
				prog.done.Add(1)
			}
		}
		before := perf.TakeSnapshot()
		points, err := fet.GateSweep(ctx, vgs, *vd)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		d := perf.TakeSnapshot().Diff(before)
		fmt.Printf("# flops\t%d\n", d.Flops)
		printSigmaCache(d.Counters)
		fmt.Println("# Vg(V)\tId(A)\titers\tconverged")
		for _, p := range points {
			fmt.Printf("%.4f\t%.6e\t%d\t%v\n", p.VGate, p.Current, p.Iterations, p.Converged)
		}
	default:
		fmt.Fprintf(os.Stderr, "omen: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// sweepOptions assembles the fault-tolerance configuration from the CLI
// flags. The returned cleanup closes the journal (a no-op without one).
func sweepOptions(pool *sched.Pool, prog *progress, checkpoint string, resume bool, maxRetries int, taskTimeout time.Duration, quarantine bool, faultRate float64, faultSeed uint64) (cluster.SweepOptions, func(), error) {
	opts := cluster.SweepOptions{
		Pool: pool,
		Retry: resilience.Policy{
			MaxAttempts:    maxRetries + 1,
			AttemptTimeout: taskTimeout,
			JitterFrac:     0.2,
			Seed:           faultSeed,
		},
		Quarantine: quarantine,
		OnProgress: prog.set,
	}
	if faultRate > 0 {
		opts.Injector = &resilience.Injector{Seed: faultSeed, Rate: faultRate}
	}
	closeJournal := func() {}
	if checkpoint == "" {
		if resume {
			return opts, nil, errors.New("-resume requires -checkpoint")
		}
		return opts, closeJournal, nil
	}
	if !resume {
		if _, err := os.Stat(checkpoint); err == nil {
			return opts, nil, fmt.Errorf("journal %s exists; pass -resume to continue it or remove the file", checkpoint)
		}
	}
	j, err := cluster.OpenFileJournal(checkpoint)
	if err != nil {
		return opts, nil, err
	}
	opts.Journal = j
	closeJournal = func() { j.Close() }
	return opts, closeJournal, nil
}

// printSigmaCache emits the self-energy cache counters as a comment line
// alongside the flop count, in both serial and distributed output (a
// coordinator prints the exact merge of its workers' deltas).
func printSigmaCache(counters map[string]int64) {
	if counters["sigma-hits"] == 0 && counters["sigma-misses"] == 0 {
		return
	}
	fmt.Printf("# sigma-cache\thits=%d misses=%d coalesced=%d evictions=%d decimations=%d seeded=%d seed-fallbacks=%d\n",
		counters["sigma-hits"], counters["sigma-misses"], counters["sigma-coalesced"],
		counters["sigma-evictions"], counters["sigma-decimations"],
		counters["sigma-seeded"], counters["sigma-seed-fallbacks"])
}

// printSweepSummary emits the fault-tolerance accounting as comment lines
// ahead of the data when anything noteworthy happened.
func printSweepSummary(rep *cluster.SweepReport) {
	if rep == nil {
		return
	}
	if rep.Restored > 0 {
		fmt.Printf("# resumed: %d/%d tasks restored from checkpoint\n", rep.Restored, rep.Total)
	}
	if rep.Retries > 0 {
		fmt.Printf("# retries: %d extra attempts\n", rep.Retries)
	}
	if len(rep.Quarantined) > 0 {
		fmt.Printf("# quarantined: %d/%d tasks dropped and renormalized:", len(rep.Quarantined), rep.Total)
		for _, t := range rep.Quarantined {
			fmt.Printf(" (k %d, E %d)", t.K, t.E)
		}
		fmt.Println()
	}
}

// stopProfiles flushes any active CPU/heap profiles. It is safe to call
// more than once; fatal invokes it because os.Exit skips the deferred
// call in main, and losing the profile on a failed run would defeat the
// point of profiling a failure.
var stopProfiles = func() {}

// startProfiles begins CPU profiling (when cpu is non-empty) and arranges
// for a heap profile to be written at exit (when mem is non-empty),
// installing the shared stopProfiles flush.
func startProfiles(cpu, mem string) error {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuFile = f
	}
	if cpuFile == nil && mem == "" {
		return nil
	}
	var once sync.Once
	stopProfiles = func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, "omen: memprofile:", err)
					return
				}
				runtime.GC() // flush recently freed objects for an accurate live-heap picture
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "omen: memprofile:", err)
				}
				f.Close()
			}
		})
	}
	return nil
}

// fatal reports err and exits non-zero. An interrupt gets the
// conventional 128+SIGINT code and a partial-progress summary so
// operators can see how much of the sweep a -resume run will skip.
func fatal(ctx context.Context, prog *progress, err error) {
	stopProfiles()
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "omen: interrupted — completed %d/%d tasks\n",
			prog.done.Load(), prog.total.Load())
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "omen:", err)
	os.Exit(1)
}
