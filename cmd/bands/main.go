// Command bands prints the lead (contact) band structure of a benchmark
// device as tab-separated E(k) columns, one line per longitudinal
// wave number, plus the detected transport gap.
//
// Example:
//
//	bands -device agnr7 -nk 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/transport"
)

func main() {
	var (
		devName = flag.String("device", "agnr7", "device: "+strings.Join(device.Names(), ", "))
		nk      = flag.Int("nk", 33, "longitudinal k-points")
		bandLo  = flag.Int("bandlo", 0, "first band column to print")
		bandHi  = flag.Int("bandhi", -1, "last band column to print (-1: all)")
		version = flag.Bool("version", false, "print the build version (module version plus VCS revision) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("bands %s\n", buildinfo.Version())
		return
	}

	desc, ok := device.Lookup(*devName)
	if !ok {
		fmt.Fprintf(os.Stderr, "bands: unknown device %q (known: %s)\n", *devName, strings.Join(device.Names(), ", "))
		os.Exit(2)
	}
	// Band structure is a property of the lead cell alone; shrink the
	// registry preset's transport length to the minimum the builders
	// accept so construction stays cheap.
	switch desc.Kind {
	case device.Chain, device.ArmchairGNR, device.ZigzagGNR:
		desc.CellsX = 4
	default:
		desc.CellsX = 3
	}
	sim, err := core.New(desc, transport.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bands:", err)
		os.Exit(1)
	}
	bs, err := sim.Bands(*nk)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bands:", err)
		os.Exit(1)
	}
	nb := bs.NumBands()
	hi := *bandHi
	if hi < 0 || hi >= nb {
		hi = nb - 1
	}
	lo := *bandLo
	if lo < 0 {
		lo = 0
	}
	fmt.Printf("# %s: %d bands, k in rad/nm\n", desc.Name, nb)
	if ev, ec, ok := bs.GapAround(-5, 10); ok {
		fmt.Printf("# transport gap: Ev = %.4f eV, Ec = %.4f eV, Eg = %.4f eV\n", ev, ec, ec-ev)
	} else {
		fmt.Println("# metallic (no transport gap found)")
	}
	for ik, k := range bs.K {
		fmt.Printf("%.6f", k)
		for n := lo; n <= hi; n++ {
			fmt.Printf("\t%.6f", bs.Energies[ik][n])
		}
		fmt.Println()
	}
}
