// Command bands prints the lead (contact) band structure of a benchmark
// device as tab-separated E(k) columns, one line per longitudinal
// wave number, plus the detected transport gap.
//
// Example:
//
//	bands -device agnr7 -nk 64
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/transport"
)

func main() {
	var (
		devName = flag.String("device", "agnr7", "device: chain, agnr7, agnr13, zgnr6, sinw, sinw-full, gaasnw, utb")
		nk      = flag.Int("nk", 33, "longitudinal k-points")
		bandLo  = flag.Int("bandlo", 0, "first band column to print")
		bandHi  = flag.Int("bandhi", -1, "last band column to print (-1: all)")
	)
	flag.Parse()

	descs := map[string]device.Description{
		"chain":     {Name: "chain", Kind: device.Chain, CellsX: 4},
		"agnr7":     {Name: "AGNR-7", Kind: device.ArmchairGNR, CellsX: 4, CellsY: 7},
		"agnr13":    {Name: "AGNR-13", Kind: device.ArmchairGNR, CellsX: 4, CellsY: 13},
		"zgnr6":     {Name: "ZGNR-6", Kind: device.ZigzagGNR, CellsX: 4, CellsY: 6},
		"sinw":      {Name: "SiNW sp3s*", Kind: device.SiNanowire, CellsX: 3, CellsY: 1, CellsZ: 1},
		"sinw-full": {Name: "SiNW sp3d5s*", Kind: device.SiNanowire, CellsX: 3, CellsY: 1, CellsZ: 1, FullBand: true},
		"gaasnw":    {Name: "GaAs NW", Kind: device.GaAsNanowire, CellsX: 3, CellsY: 1, CellsZ: 1},
		"utb":       {Name: "Si UTB", Kind: device.SiUTB, CellsX: 3, CellsY: 1, CellsZ: 1},
	}
	desc, ok := descs[*devName]
	if !ok {
		fmt.Fprintf(os.Stderr, "bands: unknown device %q\n", *devName)
		os.Exit(2)
	}
	sim, err := core.New(desc, transport.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bands:", err)
		os.Exit(1)
	}
	bs, err := sim.Bands(*nk)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bands:", err)
		os.Exit(1)
	}
	nb := bs.NumBands()
	hi := *bandHi
	if hi < 0 || hi >= nb {
		hi = nb - 1
	}
	lo := *bandLo
	if lo < 0 {
		lo = 0
	}
	fmt.Printf("# %s: %d bands, k in rad/nm\n", desc.Name, nb)
	if ev, ec, ok := bs.GapAround(-5, 10); ok {
		fmt.Printf("# transport gap: Ev = %.4f eV, Ec = %.4f eV, Eg = %.4f eV\n", ev, ec, ec-ev)
	} else {
		fmt.Println("# metallic (no transport gap found)")
	}
	for ik, k := range bs.K {
		fmt.Printf("%.6f", k)
		for n := lo; n <= hi; n++ {
			fmt.Printf("\t%.6f", bs.Energies[ik][n])
		}
		fmt.Println()
	}
}
