// Command benchguard turns `go test -bench -benchmem` output into a
// committed performance baseline and gates regressions against it. It
// reads benchmark output on stdin in both modes:
//
//	go test -bench 'BenchmarkT2' -benchmem . | benchguard -write BENCH_kernels.json
//	go test -bench 'BenchmarkT2' -benchmem . | benchguard -check BENCH_kernels.json
//
// The check compares allocs/op — a deterministic property of the code,
// unlike wall time on shared CI machines — and fails (exit 1) when any
// benchmark regresses by more than -tolerance relative to the baseline,
// or when a baselined benchmark is missing from the input. Benchmarks
// that report a "speedup" custom metric (the batched-vs-looped sweep)
// are additionally gated downward: the measured speedup must stay
// within -tolerance of the committed baseline, so the batched path
// cannot quietly decay back toward the looped one. Benchmarks that
// report a "bytes/task" custom metric (the distributed wire economy)
// are gated upward like allocs/op: the wire may not quietly bloat past
// the committed bytes-per-task. ns/op and B/op are recorded in the
// baseline for reference but not gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
)

// result holds the parsed metrics of one benchmark.
type result struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Speedup is the benchmark's "speedup" custom metric (0 when the
	// benchmark does not report one). Gated as a lower bound.
	Speedup float64 `json:"speedup,omitempty"`
	// BytesPerTask is the benchmark's "bytes/task" custom metric (0 when
	// the benchmark does not report one). Gated as an upper bound, like
	// allocs/op: wire traffic is deterministic, so growth is a regression.
	BytesPerTask float64 `json:"bytes_per_task,omitempty"`
}

// baseline is the committed JSON document.
type baseline struct {
	Benchmarks map[string]result `json:"benchmarks"`
}

func main() {
	var (
		write     = flag.String("write", "", "write a new baseline JSON to this file")
		check     = flag.String("check", "", "check stdin against this baseline JSON")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional allocs/op increase before failing")
		version   = flag.Bool("version", false, "print the build version (module version plus VCS revision) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("benchguard %s\n", buildinfo.Version())
		return
	}
	if (*write == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchguard: exactly one of -write or -check is required")
		os.Exit(2)
	}

	got, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *write != "" {
		out, err := json.MarshalIndent(baseline{Benchmarks: got}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*write, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(got), *write)
		return
	}

	raw, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *check, err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			fmt.Printf("FAIL\t%s: baselined benchmark missing from input\n", name)
			failed = true
			continue
		}
		limit := want.AllocsOp * (1 + *tolerance)
		status := "ok"
		if have.AllocsOp > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s\t%s: allocs/op %.0f vs baseline %.0f (limit %.0f)\n",
			status, name, have.AllocsOp, want.AllocsOp, limit)
		if want.Speedup > 0 {
			floor := want.Speedup * (1 - *tolerance)
			status := "ok"
			if have.Speedup < floor {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s\t%s: speedup %.3f vs baseline %.3f (floor %.3f)\n",
				status, name, have.Speedup, want.Speedup, floor)
		}
		if want.BytesPerTask > 0 {
			ceil := want.BytesPerTask * (1 + *tolerance)
			status := "ok"
			if have.BytesPerTask > ceil {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s\t%s: bytes/task %.1f vs baseline %.1f (ceiling %.1f)\n",
				status, name, have.BytesPerTask, want.BytesPerTask, ceil)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseBenchOutput extracts per-benchmark metrics from `go test -bench`
// output. Benchmark names have their -GOMAXPROCS suffix stripped so
// baselines are portable across machines with different core counts.
func parseBenchOutput(f *os.File) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r result
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BytesOp = v
			case "allocs/op":
				r.AllocsOp = v
			case "speedup":
				r.Speedup = v
			case "bytes/task":
				r.BytesPerTask = v
			}
		}
		out[name] = r
	}
	return out, sc.Err()
}
