// Command journalcheck audits a sweep checkpoint journal after a
// failover drill: with epoch fencing working, a sweep that survived a
// coordinator crash (or a graceful drain plus resume) ends with exactly
// one digest-valid record per task — no holes (a task nobody finished)
// and no duplicates (a stale-epoch result the fence should have
// discarded). It is the machine check behind `make drill-failover`'s
// "exactly once" guarantee.
//
// Usage:
//
//	journalcheck -journal sweep.journal -total 192 [-min-epoch 2]
//
// Exits 0 and prints a one-line summary when the journal holds exactly
// -total records, one per task index in [0, total); exits 1 with a
// description of every violation class otherwise. -min-epoch
// additionally requires the journal's latest recorded coordinator
// incarnation to be at least that value — proof a restart actually
// happened during the drill.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
)

func main() {
	var (
		path     = flag.String("journal", "", "journal file to audit")
		total    = flag.Int("total", 0, "expected task count: the journal must hold exactly one record per index in [0, total)")
		minEpoch = flag.Uint64("min-epoch", 0, "require the journal's latest epoch to be at least this (0: don't check)")
		version  = flag.Bool("version", false, "print the build version (module version plus VCS revision) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("journalcheck %s\n", buildinfo.Version())
		return
	}
	if *path == "" || *total < 1 {
		fmt.Fprintln(os.Stderr, "journalcheck: -journal and a positive -total are required")
		os.Exit(2)
	}
	if _, err := os.Stat(*path); err != nil {
		fail("%v", err)
	}
	j, err := cluster.OpenFileJournal(*path)
	if err != nil {
		fail("%v", err)
	}
	defer j.Close()

	recs, err := j.Load()
	if err != nil {
		fail("%v", err)
	}
	counts := make([]int, *total)
	bad := 0
	var outOfRange []int
	for _, rec := range recs {
		if rec.Index < 0 || rec.Index >= *total {
			outOfRange = append(outOfRange, rec.Index)
			continue
		}
		counts[rec.Index]++
	}
	var missing, dup []int
	for i, n := range counts {
		switch {
		case n == 0:
			missing = append(missing, i)
		case n > 1:
			dup = append(dup, i)
		}
	}
	if len(outOfRange) > 0 {
		bad++
		fmt.Fprintf(os.Stderr, "journalcheck: %d records outside [0,%d): %v\n",
			len(outOfRange), *total, clip(outOfRange))
	}
	if len(missing) > 0 {
		bad++
		fmt.Fprintf(os.Stderr, "journalcheck: %d tasks have no record: %v\n",
			len(missing), clip(missing))
	}
	if len(dup) > 0 {
		bad++
		fmt.Fprintf(os.Stderr, "journalcheck: %d tasks recorded more than once (epoch fence breach): %v\n",
			len(dup), clip(dup))
	}
	epoch, err := j.LatestEpoch()
	if err != nil {
		fail("%v", err)
	}
	if *minEpoch > 0 && epoch < *minEpoch {
		bad++
		fmt.Fprintf(os.Stderr, "journalcheck: latest epoch %d < required %d — no coordinator restart recorded\n",
			epoch, *minEpoch)
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("journalcheck: OK — %d records, exactly one per task, latest epoch %d\n",
		len(recs), epoch)
}

// clip bounds a violation list so a badly broken journal stays readable.
func clip(idx []int) []int {
	if len(idx) > 10 {
		return idx[:10]
	}
	return idx
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "journalcheck: "+format+"\n", args...)
	os.Exit(1)
}
