// Command thermal runs the phonon side of the simulator: valence-force-
// field dispersions, ballistic phonon transmission, and the Landauer
// thermal conductance of nanowires and chains.
//
// Examples:
//
//	thermal -mode bands -device chain
//	thermal -mode conductance -device sinw -tmin 2 -tmax 300
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/lattice"
	"repro/internal/phonon"
	"repro/internal/sparse"
)

func buildDevice(name string) (*sparse.BlockTridiag, float64, error) {
	switch name {
	case "chain":
		s, err := lattice.NewLinearChain(0.25, 8)
		if err != nil {
			return nil, 0, err
		}
		m := phonon.Model{Alpha: 40, Beta: 10, Mass: []float64{28}}
		d, err := phonon.DynamicalMatrix(s, m)
		return d, s.LayerPeriod, err
	case "sinw":
		s, err := lattice.NewZincblendeNanowire(0.5431, 6, 1, 1)
		if err != nil {
			return nil, 0, err
		}
		d, err := phonon.DynamicalMatrix(s, phonon.SiliconVFF())
		return d, s.LayerPeriod, err
	default:
		return nil, 0, fmt.Errorf("unknown device %q (chain, sinw)", name)
	}
}

func main() {
	var (
		mode    = flag.String("mode", "bands", "mode: bands, transmission, conductance")
		dev     = flag.String("device", "chain", "device: chain, sinw")
		nq      = flag.Int("nq", 32, "q-points for bands")
		nw      = flag.Int("nw", 60, "frequency points")
		tMin    = flag.Float64("tmin", 2, "lowest temperature (K)")
		tMax    = flag.Float64("tmax", 300, "highest temperature (K)")
		nTemps  = flag.Int("ntemps", 8, "temperature points")
		version = flag.Bool("version", false, "print the build version (module version plus VCS revision) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("thermal %s\n", buildinfo.Version())
		return
	}
	d, period, err := buildDevice(*dev)
	if err != nil {
		fatal(err)
	}
	switch *mode {
	case "bands":
		disp, err := phonon.Bands(d, period, *nq)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %s phonon dispersion: q (rad/nm), then ħω per branch (meV)\n", *dev)
		for iq, q := range disp.Q {
			fmt.Printf("%.5f", q)
			for _, w := range disp.Omega[iq] {
				fmt.Printf("\t%.4f", w*phonon.EnergyQuantum*1e3)
			}
			fmt.Println()
		}
	case "transmission":
		disp, err := phonon.Bands(d, period, 16)
		if err != nil {
			fatal(err)
		}
		wMax := 1.1 * disp.MaxFrequency()
		fmt.Println("# hw(meV)\tT(w)")
		for i := 0; i < *nw; i++ {
			w := wMax * float64(i) / float64(*nw-1)
			t, err := phonon.Transmission(d, w)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%.4f\t%.6f\n", w*phonon.EnergyQuantum*1e3, t)
		}
	case "conductance":
		disp, err := phonon.Bands(d, period, 16)
		if err != nil {
			fatal(err)
		}
		wMax := 1.05 * disp.MaxFrequency()
		omegas := make([]float64, 400)
		for i := range omegas {
			omegas[i] = wMax * float64(i) / float64(len(omegas)-1)
		}
		fmt.Println("# T(K)\tkappa(W/K)\tkappa/k0")
		for i := 0; i < *nTemps; i++ {
			temp := *tMin
			if *nTemps > 1 {
				temp += (*tMax - *tMin) * float64(i) / float64(*nTemps-1)
			}
			k, err := phonon.ThermalConductance(d, omegas, temp)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%.1f\t%.4e\t%.3f\n", temp, k, k/phonon.ConductanceQuantumThermal(temp))
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermal:", err)
	os.Exit(1)
}
