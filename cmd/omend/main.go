// Command omend is the simulation-as-a-service daemon: an HTTP front
// end that turns the distributed sweep engine into a job service.
// Clients POST a RunSpec to /v1/jobs and get back a job ID — the spec's
// content hash, so identical submissions are by construction the same
// job. The daemon validates, queues with per-client quotas and priority
// classes, and runs each job through the distributed coordinator with
// self-spawned worker processes, journaling results to -data. A
// completed spec re-submitted is served by journal replay (zero new
// solves); a drained or crashed job resumes from its journal on the
// next submission.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a spec (202 queued, 200 dedup)
//	GET    /v1/jobs             list jobs (live + journaled history)
//	GET    /v1/jobs/{id}        job status and perf
//	GET    /v1/jobs/{id}/result finished sweep, omen's exact text format
//	GET    /v1/jobs/{id}/stream SSE: points and counters as they commit
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness, version, load
//	GET    /metrics             Prometheus counters
//
// SIGTERM drains gracefully: admissions stop, running jobs journal what
// they have and land "drained", the HTTP listener closes, exit 0.
// SIGINT cancels hard (exit 130).
//
// Example:
//
//	omend -addr :8080 -data /var/lib/omend &
//	curl -s localhost:8080/v1/jobs -d '{"grid":{"ne":512}}'
//	curl -N localhost:8080/v1/jobs/<id>/stream
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/server"
	"repro/internal/spec"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		dataDir        = flag.String("data", "omend-data", "data directory: one journal per job, the service's durable state")
		maxRunning     = flag.Int("max-running", 2, "jobs executing concurrently")
		maxQueue       = flag.Int("max-queue", 16, "admission queue bound; submissions beyond it get 429")
		quota          = flag.Int("quota", 4, "per-client live-job quota (-1: unlimited)")
		defaultWorkers = flag.Int("default-workers", 2, "worker processes per job when the spec leaves exec.workers at 0")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM: wait this long for running jobs to drain before exiting")
		version        = flag.Bool("version", false, "print the build version (module version plus VCS revision) and exit")

		// Hidden worker mode: the daemon re-execs itself into one worker
		// per job slot, exactly like `omen -worker` (process isolation —
		// a crashing worker loses a lease, not the service).
		workerAddr = flag.String("worker", "", "internal: run as a sweep worker dialing this address")
		specJSON   = flag.String("spec-json", "", "internal: inline JSON spec for -worker")
	)
	flag.Parse()

	if *version {
		fmt.Printf("omend %s\n", buildinfo.Version())
		return
	}

	if *workerAddr != "" {
		runWorker(*workerAddr, *specJSON)
		return
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "omend: "+format+"\n", args...)
	}
	m, err := server.NewManager(server.Config{
		DataDir:        *dataDir,
		MaxRunning:     *maxRunning,
		MaxQueued:      *maxQueue,
		ClientQuota:    *quota,
		DefaultWorkers: *defaultWorkers,
		SpawnWorker:    spawnWorkerProcess,
		Logf:           logf,
	})
	if err != nil {
		fatal(err)
	}

	api := &server.API{M: m, Version: buildinfo.Version()}
	srv := &http.Server{Addr: *addr, Handler: api.Handler()}

	errC := make(chan error, 1)
	go func() {
		logf("listening on %s (data %s, %d executors, version %s)",
			*addr, *dataDir, *maxRunning, buildinfo.Version())
		errC <- srv.ListenAndServe()
	}()

	term := make(chan os.Signal, 1)
	intr := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	signal.Notify(intr, os.Interrupt)

	select {
	case err := <-errC:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-intr:
		// Hard stop: cancel running jobs, close the listener, exit 130.
		logf("SIGINT — canceling jobs and exiting")
		srv.Close()
		m.Close()
		os.Exit(130)
	case <-term:
		// Graceful drain: stop admissions, let running jobs journal what
		// they have and land resumable, then close the listener. The
		// HTTP server keeps answering status/stream requests while jobs
		// drain, so clients watch their jobs land "drained".
		logf("SIGTERM — draining (up to %v)", *drainTimeout)
		m.Drain(*drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
		logf("drained — journals in %s are resumable by re-submission", *dataDir)
	}
}

// spawnWorkerProcess launches one worker as a re-exec of this binary,
// mirroring omen's self-spawn: the worker is handed the serialized
// worker-variant spec itself, so it cannot drift from the job.
func spawnWorkerProcess(ctx context.Context, addr string, ws spec.RunSpec) error {
	wj, err := ws.Canonical()
	if err != nil {
		return err
	}
	cmd := exec.CommandContext(ctx, os.Args[0], "-worker", addr, "-spec-json", string(wj))
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

// runWorker is the hidden -worker mode.
func runWorker(addr, specJSON string) {
	s, err := spec.Parse([]byte(specJSON))
	if err != nil {
		fatal(err)
	}
	if err := s.ValidateFor(spec.RoleWorker); err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := server.WorkerMain(ctx, s, addr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "omend:", err)
	os.Exit(1)
}
