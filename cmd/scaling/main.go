// Command scaling reproduces the paper-style parallel-performance studies
// on the calibrated machine model (see DESIGN.md for the Jaguar
// substitution): strong scaling of a fixed workload, weak scaling with
// growing device cross-sections, per-level efficiency, and the phase
// breakdown table.
//
// Like omen, every run is described by one serializable spec.RunSpec
// (mode "study-strong", "study-weak", …); the flags are a thin parser
// over spec.StudyDefault(), -spec/-dump-spec work the same way, and
// distributed strong-study workers are launched with the serialized spec
// itself, handshake-checked by content hash.
//
// The strong study runs through the fault-tolerant sweep engine, so long
// parameter scans can be checkpointed (-checkpoint/-resume), retried
// (-max-retries, -task-timeout), and drilled with deterministic fault
// injection (-fault-rate/-fault-seed). All studies exit non-zero on
// SIGINT after printing a partial-progress summary.
//
// Examples:
//
//	scaling -study strong
//	scaling -study strong -checkpoint strong.journal -fault-rate 0.2 -max-retries 3
//	scaling -study weak
//	scaling -study levels
//	scaling -study phases
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/distrib"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/spec"
)

// flagshipWorkload mirrors the paper's production scenario: a full I-V
// sweep (16 bias points) of a large spin-resolved sp3d5s* nanowire FET
// with 21 momentum points and ~1000 energy points per bias.
func flagshipWorkload() cluster.Workload {
	return cluster.Workload{
		NBias: 16, NK: 21, NE: 1024,
		NLayers: 140, BlockSize: 480, RHSWidth: 480,
		SelfEnergyIterations: 30,
		EnergyCostCV:         0.1,
		CouplingRank:         120,
	}
}

// strongCounts are the core counts of the strong-scaling study — the
// paper's machine sizes from two racks up to the full system. Their
// number is the study's task-grid NE, which the spec records (and
// hashes) so distributed workers verifiably agree on the grid.
var strongCounts = []int{672, 1344, 2688, 5376, 10752, 21504, 43008, 86016, 172032, 221400}

// steps tracks study progress for the interrupt summary.
type steps struct {
	done, total atomic.Int64
}

func (s *steps) set(done, total int) {
	s.done.Store(int64(done))
	s.total.Store(int64(total))
}

func main() {
	def := spec.StudyDefault()
	var (
		specPath = flag.String("spec", "", "load the run spec from this JSON file; flags set on the command line override its fields")
		specJSON = flag.String("spec-json", "", "inline JSON run spec (how a coordinator launches self-spawned workers); mutually exclusive with -spec")
		dumpSpec = flag.Bool("dump-spec", false, "print the fully resolved run spec (canonical JSON plus content hashes) and exit")

		study       = flag.String("study", "strong", "study: strong, weak, levels, phases")
		checkpoint  = flag.String("checkpoint", def.Resilience.Checkpoint, "journal file for checkpoint/restart (strong study)")
		resume      = flag.Bool("resume", def.Resilience.Resume, "resume from an existing -checkpoint journal")
		maxRetries  = flag.Int("max-retries", def.Resilience.MaxRetries, "retries per study step after the first attempt")
		taskTimeout = flag.Duration("task-timeout", def.Resilience.TaskTimeout.Std(), "per-attempt deadline for one study step (0: none)")
		faultRate   = flag.Float64("fault-rate", def.Resilience.FaultRate, "fault-injection drill: fraction of steps failing their first attempt")
		faultSeed   = flag.Uint64("fault-seed", def.Resilience.FaultSeed, "seed for deterministic fault injection and retry jitter")

		serveAddr    = flag.String("serve", "", "run the strong study as distributed-sweep coordinator on this TCP address")
		workerAddr   = flag.String("worker", "", "run as distributed-sweep worker dialing the coordinator at this TCP address (strong study)")
		workersN     = flag.Int("workers", def.Exec.Workers, "with -serve: worker processes to self-spawn from this binary (0: wait for external -worker processes)")
		leaseTimeout = flag.Duration("lease-timeout", def.Exec.LeaseTimeout.Std(), "coordinator: how long a worker may hold a task lease before it is re-dispatched")
		rejoinWindow = flag.Duration("rejoin-window", def.Exec.RejoinWindow.Std(), "worker: keep re-dialing for this long after losing the coordinator mid-study before giving up (0: a coordinator crash ends the worker)")
		drainTimeout = flag.Duration("drain-timeout", def.Exec.DrainTimeout.Std(), "coordinator: on SIGTERM, stop granting leases and accept in-flight results for up to this long before exiting with a resumable journal")
		shards       = flag.Int("shards", def.Exec.Shards, "coordinator: partition the study's task grid across this many scheduling shards with work-stealing (0 or 1: single queue)")
		wireFormat   = flag.String("wire", def.Exec.WireFormat, "coordinator/worker wire format for hot messages: binary (compact, default) or json (v3-compatible)")
		version      = flag.Bool("version", false, "print the build version (module version plus VCS revision) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("scaling %s\n", buildinfo.Version())
		return
	}

	s := def
	switch {
	case *specPath != "" && *specJSON != "":
		usageErr(errors.New("-spec and -spec-json are mutually exclusive"))
	case *specPath != "":
		b, err := os.ReadFile(*specPath)
		if err != nil {
			usageErr(err)
		}
		if s, err = spec.ParseInto(def, b); err != nil {
			usageErr(fmt.Errorf("%s: %w", *specPath, err))
		}
	case *specJSON != "":
		var err error
		if s, err = spec.ParseInto(def, []byte(*specJSON)); err != nil {
			usageErr(err)
		}
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "study":
			s.Mode = "study-" + *study
		case "checkpoint":
			s.Resilience.Checkpoint = *checkpoint
		case "resume":
			s.Resilience.Resume = *resume
		case "max-retries":
			s.Resilience.MaxRetries = *maxRetries
		case "task-timeout":
			s.Resilience.TaskTimeout = spec.Duration(*taskTimeout)
		case "fault-rate":
			s.Resilience.FaultRate = *faultRate
		case "fault-seed":
			s.Resilience.FaultSeed = *faultSeed
		case "workers":
			s.Exec.Workers = *workersN
		case "lease-timeout":
			s.Exec.LeaseTimeout = spec.Duration(*leaseTimeout)
		case "rejoin-window":
			s.Exec.RejoinWindow = spec.Duration(*rejoinWindow)
		case "drain-timeout":
			s.Exec.DrainTimeout = spec.Duration(*drainTimeout)
		case "shards":
			s.Exec.Shards = *shards
		case "wire":
			s.Exec.WireFormat = *wireFormat
		}
	})
	// The strong study's task grid is its hardcoded core-count list; pin
	// the spec's grid to it so the content hash describes the real run
	// (and a stale grid in a spec file cannot lie about it).
	if s.Mode == spec.ModeStudyStrong {
		s.Grid = spec.GridSpec{NE: len(strongCounts), NK: 1}
	}

	if *dumpSpec {
		if err := s.Validate(); err != nil {
			usageErr(err)
		}
		b, err := s.CanonicalIndent()
		if err != nil {
			usageErr(err)
		}
		fmt.Printf("%s\n", b)
		fmt.Printf("# device-hash\t%s\n", s.DeviceHash())
		fmt.Printf("# grid-hash\t%s\n", s.GridHash())
		fmt.Printf("# solver-hash\t%s\n", s.SolverHash())
		fmt.Printf("# spec-hash\t%s\n", s.SpecHash())
		return
	}

	if *serveAddr != "" && *workerAddr != "" {
		usageErr(errors.New("-serve and -worker are mutually exclusive"))
	}
	role := spec.RoleLocal
	switch {
	case *serveAddr != "":
		role = spec.RoleCoordinator
	case *workerAddr != "":
		role = spec.RoleWorker
	}
	if err := s.ValidateFor(role); err != nil {
		usageErr(err)
	}

	m := cluster.Jaguar()

	// An interrupt stops the sweep at the next study step; model
	// evaluations themselves are fast enough not to need finer checks.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var prog steps

	switch s.Mode {
	case spec.ModeStudyStrong:
		w := flagshipWorkload()
		counts := strongCounts
		reports := make([]cluster.Report, len(counts))

		retry := resilience.Policy{
			MaxAttempts:    s.Resilience.MaxRetries + 1,
			AttemptTimeout: s.Resilience.TaskTimeout.Std(),
			JitterFrac:     0.2,
			Seed:           s.Resilience.FaultSeed,
		}
		var injector *resilience.Injector
		if s.Resilience.FaultRate > 0 {
			injector = &resilience.Injector{Seed: s.Resilience.FaultSeed, Rate: s.Resilience.FaultRate}
		}
		opts := cluster.SweepOptions{
			Retry:      retry,
			Injector:   injector,
			OnProgress: prog.set,
			Restore: func(t cluster.Task, payload []byte) error {
				return json.Unmarshal(payload, &reports[t.E])
			},
		}
		fn := func(_ context.Context, t cluster.Task) ([]byte, error) {
			r, err := m.PredictAuto(w, counts[t.E])
			if err != nil {
				return nil, resilience.MarkPermanent(fmt.Errorf("cluster: %d cores: %w", counts[t.E], err))
			}
			reports[t.E] = r
			return json.Marshal(r)
		}

		if *workerAddr != "" {
			conn, err := comms.DialRetry(ctx, comms.TCP{}, *workerAddr, 30*time.Second)
			if err != nil {
				fatal(ctx, &prog, err)
			}
			host, _ := os.Hostname()
			rejoin := s.Exec.RejoinWindow.Std()
			err = distrib.RunWorker(ctx, conn, 1, 1, len(counts), distrib.WorkerOptions{
				ID:           fmt.Sprintf("%s-%d", host, os.Getpid()),
				Pool:         sched.New(1),
				Capacity:     distrib.DefaultLeaseBatch,
				WireFormat:   s.Exec.WireFormat,
				Retry:        retry,
				Injector:     injector,
				SpecHash:     s.SpecHash(),
				RejoinWindow: rejoin,
				Dial: func(ctx context.Context) (net.Conn, error) {
					return comms.DialRetry(ctx, comms.TCP{}, *workerAddr, rejoin)
				},
			}, fn)
			if err != nil {
				fatal(ctx, &prog, err)
			}
			return
		}

		// The coordinator's journal is the cluster's source of truth, so
		// it syncs every acknowledged record to stable storage.
		var jopts []cluster.JournalOption
		if *serveAddr != "" {
			jopts = append(jopts, cluster.WithFsync())
		}
		warn := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "scaling: warning: "+format+"\n", args...)
		}
		j, err := spec.OpenJournal(s, warn, jopts...)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		if j != nil {
			defer j.Close()
			opts.Journal = j
		}

		var rep *cluster.SweepReport
		var clusterLine string
		if *serveAddr != "" {
			lis, err := comms.TCP{}.Listen(*serveAddr)
			if err != nil {
				fatal(ctx, &prog, err)
			}
			fmt.Fprintf(os.Stderr, "scaling: coordinating %d steps on %s\n", len(counts), lis.Addr())
			if s.Exec.Workers == 0 {
				fmt.Fprintf(os.Stderr, "scaling: no self-spawned workers (-workers 0); waiting for external `scaling -study strong -worker %s` processes to connect\n",
					comms.DialableAddr(lis.Addr()))
			}
			wj, err := s.WorkerVariant().Canonical()
			if err != nil {
				lis.Close()
				fatal(ctx, &prog, err)
			}
			var children sync.WaitGroup
			for i := 0; i < s.Exec.Workers; i++ {
				// One serialized spec is the whole worker configuration —
				// no per-flag argv mirroring to drift.
				cmd := exec.CommandContext(ctx, os.Args[0],
					"-worker", comms.DialableAddr(lis.Addr()),
					"-spec-json", string(wj))
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					lis.Close()
					fatal(ctx, &prog, fmt.Errorf("spawn worker: %w", err))
				}
				children.Add(1)
				go func(cmd *exec.Cmd, i int) {
					defer children.Done()
					if err := cmd.Wait(); err != nil {
						fmt.Fprintf(os.Stderr, "scaling: worker %d exited: %v\n", i, err)
					}
				}(cmd, i)
			}
			dopts := distrib.Options{
				LeaseTimeout: s.Exec.LeaseTimeout.Std(),
				DrainTimeout: s.Exec.DrainTimeout.Std(),
				Shards:       s.Exec.Shards,
				WireFormat:   s.Exec.WireFormat,
				Journal:      opts.Journal,
				Restore:      opts.Restore,
				OnProgress:   prog.set,
				SpecHash:     s.SpecHash(),
			}
			if j != nil {
				// Same failover fencing identity as omen's serve mode: the
				// RunID pins rejoining workers to this run instance, a
				// resumed journal bumps the epoch to fence out results from
				// the incarnation it replaces.
				if h, herr := j.ReadHeader(); herr == nil && h != nil {
					dopts.RunID = h.RunID
				}
				epoch, eerr := j.LatestEpoch()
				if s.Resilience.Resume {
					epoch, eerr = j.BumpEpoch()
				}
				if eerr != nil {
					fatal(ctx, &prog, eerr)
				}
				dopts.Epoch = epoch
			}
			// SIGTERM drains gracefully: no new leases, in-flight results
			// accepted for -drain-timeout, resumable exit with 143.
			drain := make(chan struct{})
			sigC := make(chan os.Signal, 1)
			signal.Notify(sigC, syscall.SIGTERM)
			go func() {
				<-sigC
				fmt.Fprintf(os.Stderr, "scaling: SIGTERM — draining (accepting in-flight results for up to %v)\n",
					dopts.DrainTimeout)
				close(drain)
			}()
			dopts.Drain = drain
			drep, err := distrib.Serve(ctx, lis, 1, 1, len(counts), dopts)
			signal.Stop(sigC)
			children.Wait()
			if errors.Is(err, distrib.ErrDrained) {
				if j != nil {
					j.Close()
				}
				fmt.Fprintf(os.Stderr, "scaling: drained — completed %d/%d steps; rerun with -resume to finish\n",
					prog.done.Load(), prog.total.Load())
				os.Exit(143)
			}
			if err != nil {
				fatal(ctx, &prog, err)
			}
			rep = drep.Sweep
			clusterLine = fmt.Sprintf("# cluster: %d workers, %d leases re-dispatched",
				drep.Workers, drep.Redispatched)
		} else {
			var err error
			rep, err = cluster.RunTasksResumable(ctx, 1, 1, len(counts), opts, fn)
			if err != nil {
				fatal(ctx, &prog, err)
			}
		}
		base := reports[0]
		fmt.Printf("# strong scaling on %s — workload: %d tasks, device %d layers × %d orbitals\n",
			m.Name, w.Tasks(), w.NLayers, w.BlockSize)
		if clusterLine != "" {
			fmt.Println(clusterLine)
		}
		if rep.Restored > 0 {
			fmt.Printf("# resumed: %d/%d steps restored from checkpoint\n", rep.Restored, rep.Total)
		}
		if rep.Retries > 0 {
			fmt.Printf("# retries: %d extra attempts\n", rep.Retries)
		}
		fmt.Println("# cores\tdecomposition\twall(s)\tspeedup\tTFlop/s\tefficiency")
		for _, r := range reports {
			fmt.Printf("%d\t%s\t%.1f\t%.1f\t%.1f\t%.3f\n",
				r.CoresUsed, r.Decomposition, r.WallTime, r.Speedup(base),
				r.SustainedFlops/1e12, r.Efficiency)
		}
		// Flagship point: at full machine size the energy grid is chosen
		// to divide the groups evenly (production practice), which is
		// where the sustained petaflop headline comes from.
		tuned := w
		tuned.NE = 1316 // 2 clean rounds over 658 energy groups
		rT, err := m.PredictAuto(tuned, 221400)
		if err != nil {
			fatal(ctx, &prog, err)
		}
		fmt.Printf("# tuned flagship: %d cores, %s → %.2f PFlop/s sustained (eff %.3f)\n",
			rT.CoresUsed, rT.Decomposition, rT.SustainedFlops/1e15, rT.Efficiency)
	case spec.ModeStudyWeak:
		// Cross-section grows with the machine: block size doubles per
		// step (wire diameter sweep), keeping work per core roughly fixed.
		fmt.Printf("# weak scaling on %s — device grows with the machine\n", m.Name)
		fmt.Println("# cores\tblock\tlayers\twall(s)\tPFlop/s\tefficiency")
		type step struct {
			cores, block, layers int
		}
		steps := []step{
			{2688, 120, 100},
			{10752, 190, 110},
			{43008, 300, 120},
			{120000, 420, 130},
			{221400, 480, 140},
		}
		prog.set(0, len(steps))
		for i, st := range steps {
			if err := ctx.Err(); err != nil {
				fatal(ctx, &prog, err)
			}
			w := cluster.Workload{
				NBias: 16, NK: 21, NE: 1024,
				NLayers: st.layers, BlockSize: st.block, RHSWidth: st.block,
				SelfEnergyIterations: 30, EnergyCostCV: 0.1,
				CouplingRank: st.block / 4,
			}
			r, err := m.PredictAuto(w, st.cores)
			if err != nil {
				fatal(ctx, &prog, err)
			}
			fmt.Printf("%d\t%d\t%d\t%.1f\t%.3f\t%.3f\n",
				r.CoresUsed, st.block, st.layers, r.WallTime,
				r.SustainedFlops/1e15, r.Efficiency)
			prog.set(i+1, len(steps))
		}
	case spec.ModeStudyLevels:
		// Each parallelism level exercised in isolation.
		w := flagshipWorkload()
		fmt.Printf("# per-level efficiency on %s\n", m.Name)
		fmt.Println("# level\tgroups\tcores\tefficiency")
		type lvl struct {
			name string
			d    func(n int) cluster.Decomposition
			max  int
		}
		levels := []lvl{
			{"bias", func(n int) cluster.Decomposition {
				return cluster.Decomposition{Bias: n, Momentum: 1, Energy: 1, Domains: 1}
			}, w.NBias},
			{"momentum", func(n int) cluster.Decomposition {
				return cluster.Decomposition{Bias: 1, Momentum: n, Energy: 1, Domains: 1}
			}, w.NK},
			{"energy", func(n int) cluster.Decomposition {
				return cluster.Decomposition{Bias: 1, Momentum: 1, Energy: n, Domains: 1}
			}, w.NE},
			{"domains", func(n int) cluster.Decomposition {
				return cluster.Decomposition{Bias: 1, Momentum: 1, Energy: 1, Domains: n}
			}, w.NLayers},
		}
		prog.set(0, len(levels))
		for i, l := range levels {
			if err := ctx.Err(); err != nil {
				fatal(ctx, &prog, err)
			}
			for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
				if n > l.max {
					break
				}
				r, err := m.Predict(w, l.d(n))
				if err != nil {
					fatal(ctx, &prog, err)
				}
				fmt.Printf("%s\t%d\t%d\t%.3f\n", l.name, n, r.CoresUsed, r.Efficiency)
			}
			prog.set(i+1, len(levels))
		}
	case spec.ModeStudyPhases:
		w := flagshipWorkload()
		fmt.Printf("# phase breakdown on %s\n", m.Name)
		fmt.Println("# cores\tselfE(s)\tsolve(s)\treduced(s)\tcomm(s)\timbalance(s)\ttotal(s)")
		counts := []int{5376, 43008, 221400}
		prog.set(0, len(counts))
		for i, c := range counts {
			if err := ctx.Err(); err != nil {
				fatal(ctx, &prog, err)
			}
			r, err := m.PredictAuto(w, c)
			if err != nil {
				fatal(ctx, &prog, err)
			}
			b := r.Breakdown
			fmt.Printf("%d\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.1f\n",
				r.CoresUsed, b.SelfEnergy, b.Solve, b.Reduced,
				b.Communication, b.Imbalance, r.WallTime)
			prog.set(i+1, len(counts))
		}
	default:
		usageErr(fmt.Errorf("unknown study %q", strings.TrimPrefix(s.Mode, "study-")))
	}
}

// usageErr reports a configuration error and exits with the
// conventional usage status.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "scaling:", err)
	os.Exit(2)
}

// fatal reports err and exits non-zero; an interrupt gets the 128+SIGINT
// code plus a partial-progress summary.
func fatal(ctx context.Context, prog *steps, err error) {
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "scaling: interrupted — completed %d/%d steps\n",
			prog.done.Load(), prog.total.Load())
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "scaling:", err)
	os.Exit(1)
}
