// Command scaling reproduces the paper-style parallel-performance studies
// on the calibrated machine model (see DESIGN.md for the Jaguar
// substitution): strong scaling of a fixed workload, weak scaling with
// growing device cross-sections, per-level efficiency, and the phase
// breakdown table.
//
// Examples:
//
//	scaling -study strong
//	scaling -study weak
//	scaling -study levels
//	scaling -study phases
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/cluster"
)

// flagshipWorkload mirrors the paper's production scenario: a full I-V
// sweep (16 bias points) of a large spin-resolved sp3d5s* nanowire FET
// with 21 momentum points and ~1000 energy points per bias.
func flagshipWorkload() cluster.Workload {
	return cluster.Workload{
		NBias: 16, NK: 21, NE: 1024,
		NLayers: 140, BlockSize: 480, RHSWidth: 480,
		SelfEnergyIterations: 30,
		EnergyCostCV:         0.1,
		CouplingRank:         120,
	}
}

func main() {
	var (
		study = flag.String("study", "strong", "study: strong, weak, levels, phases")
	)
	flag.Parse()
	m := cluster.Jaguar()

	// An interrupt stops the sweep at the next study step; model
	// evaluations themselves are fast enough not to need finer checks.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *study {
	case "strong":
		w := flagshipWorkload()
		counts := []int{672, 1344, 2688, 5376, 10752, 21504, 43008, 86016, 172032, 221400}
		reports, err := m.StrongScaling(w, counts)
		if err != nil {
			fatal(err)
		}
		base := reports[0]
		fmt.Printf("# strong scaling on %s — workload: %d tasks, device %d layers × %d orbitals\n",
			m.Name, w.Tasks(), w.NLayers, w.BlockSize)
		fmt.Println("# cores\tdecomposition\twall(s)\tspeedup\tTFlop/s\tefficiency")
		for _, r := range reports {
			fmt.Printf("%d\t%s\t%.1f\t%.1f\t%.1f\t%.3f\n",
				r.CoresUsed, r.Decomposition, r.WallTime, r.Speedup(base),
				r.SustainedFlops/1e12, r.Efficiency)
		}
		// Flagship point: at full machine size the energy grid is chosen
		// to divide the groups evenly (production practice), which is
		// where the sustained petaflop headline comes from.
		tuned := w
		tuned.NE = 1316 // 2 clean rounds over 658 energy groups
		rT, err := m.PredictAuto(tuned, 221400)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# tuned flagship: %d cores, %s → %.2f PFlop/s sustained (eff %.3f)\n",
			rT.CoresUsed, rT.Decomposition, rT.SustainedFlops/1e15, rT.Efficiency)
	case "weak":
		// Cross-section grows with the machine: block size doubles per
		// step (wire diameter sweep), keeping work per core roughly fixed.
		fmt.Printf("# weak scaling on %s — device grows with the machine\n", m.Name)
		fmt.Println("# cores\tblock\tlayers\twall(s)\tPFlop/s\tefficiency")
		type step struct {
			cores, block, layers int
		}
		steps := []step{
			{2688, 120, 100},
			{10752, 190, 110},
			{43008, 300, 120},
			{120000, 420, 130},
			{221400, 480, 140},
		}
		for _, s := range steps {
			if err := ctx.Err(); err != nil {
				fatal(err)
			}
			w := cluster.Workload{
				NBias: 16, NK: 21, NE: 1024,
				NLayers: s.layers, BlockSize: s.block, RHSWidth: s.block,
				SelfEnergyIterations: 30, EnergyCostCV: 0.1,
				CouplingRank: s.block / 4,
			}
			r, err := m.PredictAuto(w, s.cores)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%d\t%d\t%d\t%.1f\t%.3f\t%.3f\n",
				r.CoresUsed, s.block, s.layers, r.WallTime,
				r.SustainedFlops/1e15, r.Efficiency)
		}
	case "levels":
		// Each parallelism level exercised in isolation.
		w := flagshipWorkload()
		fmt.Printf("# per-level efficiency on %s\n", m.Name)
		fmt.Println("# level\tgroups\tcores\tefficiency")
		type lvl struct {
			name string
			d    func(n int) cluster.Decomposition
			max  int
		}
		levels := []lvl{
			{"bias", func(n int) cluster.Decomposition {
				return cluster.Decomposition{Bias: n, Momentum: 1, Energy: 1, Domains: 1}
			}, w.NBias},
			{"momentum", func(n int) cluster.Decomposition {
				return cluster.Decomposition{Bias: 1, Momentum: n, Energy: 1, Domains: 1}
			}, w.NK},
			{"energy", func(n int) cluster.Decomposition {
				return cluster.Decomposition{Bias: 1, Momentum: 1, Energy: n, Domains: 1}
			}, w.NE},
			{"domains", func(n int) cluster.Decomposition {
				return cluster.Decomposition{Bias: 1, Momentum: 1, Energy: 1, Domains: n}
			}, w.NLayers},
		}
		for _, l := range levels {
			if err := ctx.Err(); err != nil {
				fatal(err)
			}
			for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
				if n > l.max {
					break
				}
				r, err := m.Predict(w, l.d(n))
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%s\t%d\t%d\t%.3f\n", l.name, n, r.CoresUsed, r.Efficiency)
			}
		}
	case "phases":
		w := flagshipWorkload()
		fmt.Printf("# phase breakdown on %s\n", m.Name)
		fmt.Println("# cores\tselfE(s)\tsolve(s)\treduced(s)\tcomm(s)\timbalance(s)\ttotal(s)")
		for _, c := range []int{5376, 43008, 221400} {
			if err := ctx.Err(); err != nil {
				fatal(err)
			}
			r, err := m.PredictAuto(w, c)
			if err != nil {
				fatal(err)
			}
			b := r.Breakdown
			fmt.Printf("%d\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.1f\n",
				r.CoresUsed, b.SelfEnergy, b.Solve, b.Reduced,
				b.Communication, b.Imbalance, r.WallTime)
		}
	default:
		fmt.Fprintf(os.Stderr, "scaling: unknown study %q\n", *study)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaling:", err)
	os.Exit(1)
}
