package repro

// W1: distributed-wire economy. Two loopback sweeps over the same task
// grid measure the bytes the coordinator/worker protocol moves per task:
// the v3 shape (JSON frames, one task per lease, one result per frame)
// against the lean fabric (binary payloads, capacity-8 lease batches,
// coalesced result uploads). The "bytes/task" metric is deterministic —
// same grid, same protocol, same bytes — so benchguard gates it as an
// upper bound: the wire may not quietly bloat.

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/distrib"
	"repro/internal/perf"
	"repro/internal/sched"
)

// The wire benchmarks' sweep grid: 1 bias × 4 k × 16 E — small enough
// to run in milliseconds, large enough that the handshake amortizes.
const wireBenchNK, wireBenchNE = 4, 16

// runWireSweep runs one loopback sweep with a single width-1 worker and
// returns the total wire bytes moved (both directions, measured at the
// coordinator, handshake included).
func runWireSweep(b *testing.B, coord distrib.Options, work distrib.WorkerOptions) int64 {
	b.Helper()
	lb := comms.NewLoopback()
	lis, err := lb.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	// Heartbeats out of the measurement window: the comparison is pure
	// lease/result protocol.
	coord.HeartbeatEvery = time.Minute
	coord.LeaseTimeout = time.Minute
	type serveRes struct {
		rep *distrib.Report
		err error
	}
	ch := make(chan serveRes, 1)
	go func() {
		rep, serr := distrib.Serve(context.Background(), lis, 1, wireBenchNK, wireBenchNE, coord)
		ch <- serveRes{rep, serr}
	}()
	conn, err := lb.Dial(context.Background(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	var flops atomic.Int64
	work.Pool = sched.New(1)
	work.PerfNow = func() perf.Snapshot { return perf.Snapshot{Flops: flops.Load()} }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		werr := distrib.RunWorker(context.Background(), conn, 1, wireBenchNK, wireBenchNE, work,
			func(ctx context.Context, t cluster.Task) ([]byte, error) {
				flops.Add(1)
				var p [8]byte
				binary.LittleEndian.PutUint64(p[:], uint64(t.K*wireBenchNE+t.E))
				return p[:], nil
			})
		if werr != nil {
			b.Error(werr)
		}
	}()
	r := <-ch
	wg.Wait()
	if r.err != nil {
		b.Fatal(r.err)
	}
	return r.rep.Perf.Counters["wire-bytes-sent"] + r.rep.Perf.Counters["wire-bytes-recv"]
}

// BenchmarkW1_WireJSONPerFrame is the v3 baseline shape: JSON wire, one
// task per lease, one result per frame.
func BenchmarkW1_WireJSONPerFrame(b *testing.B) {
	total := float64(wireBenchNK * wireBenchNE)
	var bytes int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bytes = runWireSweep(b,
			distrib.Options{WireFormat: "json"},
			distrib.WorkerOptions{WireFormat: "json", Capacity: 1, UploadBatch: 1})
	}
	b.ReportMetric(float64(bytes)/total, "bytes/task")
}

// BenchmarkW1_WireLeanBatched is the lean fabric: binary payloads,
// capacity-8 lease batches, coalesced result uploads.
func BenchmarkW1_WireLeanBatched(b *testing.B) {
	total := float64(wireBenchNK * wireBenchNE)
	var bytes int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bytes = runWireSweep(b,
			distrib.Options{},
			distrib.WorkerOptions{Capacity: distrib.DefaultLeaseBatch})
	}
	b.ReportMetric(float64(bytes)/total, "bytes/task")
}
