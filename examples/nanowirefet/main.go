// Nanowire FET: the paper's flagship application — a self-consistent
// ballistic simulation of a gate-all-around silicon nanowire transistor.
// The example sweeps the gate voltage at fixed drain bias, solving the
// coupled quantum transport / Poisson problem at every point, and prints
// the resulting transfer characteristic with the extracted subthreshold
// slope and on/off ratio.
//
// Expect a few minutes of runtime: every bias point runs 10-20
// self-consistent iterations, each with a full energy-resolved quantum
// charge integration.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/transport"
)

func main() {
	desc := device.Description{
		Name: "GAA Si nanowire FET", Kind: device.SiNanowire,
		CellsX: 14, CellsY: 2, CellsZ: 1,
	}
	sim, err := core.New(desc, transport.Config{Formalism: transport.WaveFunction})
	if err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("device: %s — %d atoms, %.1f nm channel, matrix order %d\n",
		st.Name, st.Atoms, st.TransportLen, st.MatrixOrder)

	fet, err := core.NewFET(sim)
	if err != nil {
		log.Fatal(err)
	}
	// Gate-all-around electrostatics: a ~3 nm gate window with a 1 nm
	// screening length and moderately doped extensions.
	fet.GateStart, fet.GateEnd = 0.30, 0.70
	fet.Lambda = 1.0
	fet.SourceDoping = 0.15
	fet.NE = 120

	const vd = 0.20
	vgs := transport.UniformGrid(-0.4, 0.4, 5)
	fmt.Printf("gate sweep at Vd = %.2f V:\n", vd)
	fmt.Println("  Vg(V)    Id(A)         iterations  converged")
	start := time.Now()
	points, err := fet.GateSweep(context.Background(), vgs, vd)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("  %+.2f    %.4e    %d          %v\n",
			p.VGate, p.Current, p.Iterations, p.Converged)
	}
	fmt.Printf("sweep wall time: %s\n", time.Since(start).Round(time.Millisecond))

	// Figure-of-merit extraction.
	ss, err := core.SubthresholdSlope(points[0], points[1])
	if err != nil {
		log.Fatal(err)
	}
	onOff := points[len(points)-1].Current / points[0].Current
	fmt.Printf("subthreshold slope: %.0f mV/dec (thermionic limit 60)\n", ss)
	fmt.Printf("on/off ratio over the sweep: %.1fx\n", onOff)

	// The converged channel barrier profile at the off- and on-states.
	off, on := points[0], points[len(points)-1]
	fmt.Println("channel potential energy profile U(x) (eV):")
	fmt.Println("  layer   off-state   on-state")
	for i := range off.Potential {
		fmt.Printf("  %3d     %+.3f      %+.3f\n", i, off.Potential[i], on.Potential[i])
	}
	barrierDrop := maxF(off.Potential) - maxF(on.Potential)
	fmt.Printf("gate-induced barrier lowering: %.3f eV over %.1f V of gate swing\n",
		barrierDrop, on.VGate-off.VGate)
	if math.IsNaN(barrierDrop) || barrierDrop <= 0 {
		log.Fatal("unexpected: gate did not lower the barrier")
	}
}

func maxF(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
