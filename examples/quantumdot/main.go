// Quantum dot: the NEMO-3D side of the paper's research program —
// electronic structure of a fully confined nanocrystal via sparse
// iterative diagonalization. A silicon dot's band-edge states are
// extracted with folded-spectrum Lanczos using only sparse matrix-vector
// products, first cross-checked against the dense eigensolver on a small
// dot, then run on a dot whose dense diagonalization would be painful.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/lanczos"
	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/sparse"
	"repro/internal/tb"
)

// buildDot assembles the Hamiltonian of a Si nanocrystal of cx×cy×cz
// conventional cells (hard-wall, passivated) in both block-tridiagonal
// (for shift-invert) and CSR (for matrix-free Lanczos) forms.
func buildDot(cx, cy, cz int) (*sparse.BlockTridiag, *lanczos.CSROperator, int, error) {
	s, err := lattice.NewZincblendeNanowire(0.5431, cx, cy, cz)
	if err != nil {
		return nil, nil, 0, err
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 12})
	if err != nil {
		return nil, nil, 0, err
	}
	return h, &lanczos.CSROperator{M: h.CSR()}, s.NAtoms(), nil
}

func main() {
	rng := rand.New(rand.NewSource(2026))

	// 1. Small dot: validate folded-spectrum Lanczos against the dense
	//    eigensolver.
	_, op, atoms, err := buildDot(3, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("small Si dot: %d atoms, %d orbitals\n", atoms, op.Dim())
	dense, err := linalg.EigH(op.M.Dense())
	if err != nil {
		log.Fatal(err)
	}
	// Locate the gap.
	var ev, ec float64
	for i := 0; i+1 < len(dense.Values); i++ {
		mid := (dense.Values[i] + dense.Values[i+1]) / 2
		if dense.Values[i+1]-dense.Values[i] > 1 && mid > 0 && mid < 8 {
			ev, ec = dense.Values[i], dense.Values[i+1]
			break
		}
	}
	fmt.Printf("  dense: HOMO = %.4f eV, LUMO = %.4f eV, gap = %.4f eV\n", ev, ec, ec-ev)
	res, err := lanczos.Interior(op, ec+0.05, 4, 1e-9, 400, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  folded-spectrum Lanczos (%d iterations): lowest states near the conduction edge:\n",
		res.Iterations)
	for i, v := range res.Values {
		fmt.Printf("    state %d: %.4f eV (dense reference Δ = %.2e)\n",
			i, v, nearest(dense.Values, v))
	}

	// 2. Larger dot: sparse-only territory.
	hBig, opBig, atomsBig, err := buildDot(6, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlarge Si dot: %d atoms, %d orbitals (dense solve would need %d³ work)\n",
		atomsBig, opBig.Dim(), opBig.Dim())
	start := time.Now()
	ground, err := lanczos.Lowest(opBig, 3, 1e-8, 0, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  3 lowest valence states in %d iterations (%s):\n",
		ground.Iterations, time.Since(start).Round(time.Millisecond))
	for i, v := range ground.Values {
		fmt.Printf("    %.4f eV", v)
		if i < len(ground.Values)-1 {
			fmt.Print(",")
		}
	}
	fmt.Println()
	// Interior states: the folded spectrum is too slowly converging at
	// this spectral range, so use the production path — shift-invert
	// Lanczos through the reusable block-tridiagonal factorization.
	sigma := (ev + ec) / 2
	start = time.Now()
	edge, err := lanczos.NearTarget(hBig, sigma, 4, 1e-9, 150, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  shift-invert: 4 states nearest %.2f eV in %d iterations (%s):\n",
		sigma, edge.Iterations, time.Since(start).Round(time.Millisecond))
	for _, v := range edge.Values {
		fmt.Printf("    %.4f eV\n", v)
	}

	// 3. Length series: the dot levels converge toward the infinite-wire
	//    limit as the dot grows along the axis (the transverse confinement
	//    fixes the gap scale).
	fmt.Println("\ndot gap vs length (converging to the quantum-wire limit):")
	for _, cx := range []int{2, 3, 4, 5} {
		hDot, _, _, err := buildDot(cx, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		lo, err := lanczos.NearTarget(hDot, sigma, 2, 1e-9, 150, rng)
		if err != nil {
			log.Fatal(err)
		}
		// States bracketing the mid-gap target: highest occupied and
		// lowest empty dot level.
		fmt.Printf("  %d cells: HOMO %.3f eV, LUMO %.3f eV, gap %.3f eV\n",
			cx, lo.Values[0], lo.Values[1], lo.Values[1]-lo.Values[0])
	}
}

// nearest returns the distance from v to the closest entry of vals.
func nearest(vals []float64, v float64) float64 {
	best := 1e300
	for _, d := range vals {
		x := d - v
		if x < 0 {
			x = -x
		}
		if x < best {
			best = x
		}
	}
	return best
}
