// Unfolding: effective band structures of random alloys by Brillouin-zone
// unfolding — the method of the paper's co-author line (Boykin & Klimeck)
// for making sense of supercell spectra. A clean supercell unfolds to
// razor-sharp primitive bands; an alloy supercell produces broadened
// "effective" bands whose sharpness quantifies how well the crystal
// momentum survives disorder.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"repro/internal/unfold"
)

func main() {
	const (
		nCells = 16
		a      = 0.5
		hop    = -1.0
	)
	rng := rand.New(rand.NewSource(7))
	// A generic supercell wavevector avoids the ±k degeneracies of K = 0,
	// where the eigensolver would return arbitrary mixtures carrying half
	// weights.
	const genericK = 0.37

	// 1. Clean crystal: every eigenstate of the supercell carries unit
	//    weight at exactly one primitive wavevector.
	clean := make([]float64, nCells)
	h00, h01 := unfold.SupercellChain(clean, hop)
	states, err := unfold.Unfold(h00, h01, nCells, 1, a, genericK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean 16-cell supercell at K = 0.37 rad/nm (E, dominant k, weight):")
	for _, st := range states {
		k, w := st.DominantK()
		fmt.Printf("  E = %+6.3f eV   k = %+6.3f rad/nm   W = %.3f\n", st.Energy, k, w)
	}

	// 2. A₀.₅B₀.₅ alloy: the same unfolding now spreads weight — the
	//    effective bands blur, most strongly where alloy scattering is
	//    strongest.
	for _, shift := range []float64{0.2, 0.8} {
		eps := make([]float64, nCells)
		for i := range eps {
			if rng.Float64() < 0.5 {
				eps[i] = shift
			}
		}
		h00, h01 = unfold.SupercellChain(eps, hop)
		states, err = unfold.Unfold(h00, h01, nCells, 1, a, genericK)
		if err != nil {
			log.Fatal(err)
		}
		var avgW, minW float64 = 0, 1
		for _, st := range states {
			_, w := st.DominantK()
			avgW += w / float64(len(states))
			if w < minW {
				minW = w
			}
		}
		fmt.Printf("\nA0.5B0.5 alloy, ΔE = %.1f eV: ⟨dominant weight⟩ = %.3f (min %.3f)\n",
			shift, avgW, minW)
		fmt.Println("  E(eV)     dominant k   weight")
		for i, st := range states {
			if i%3 != 0 {
				continue // sample every third state for brevity
			}
			k, w := st.DominantK()
			fmt.Printf("  %+6.3f    %+6.3f      %.3f\n", st.Energy, k, w)
		}
	}

	// 3. The sharpness metric vs disorder strength: effective bands decay
	//    smoothly from Bloch-like to fully mixed.
	fmt.Println("\neffective-band sharpness vs alloy splitting (16 cells, 20 configs):")
	fmt.Println("  ΔE(eV)   ⟨W_max⟩")
	for _, shift := range []float64{0.1, 0.3, 0.5, 0.8, 1.2, 2.0} {
		var acc float64
		const nCfg = 20
		for c := 0; c < nCfg; c++ {
			cfgRng := rand.New(rand.NewSource(int64(100 + c)))
			eps := make([]float64, nCells)
			for i := range eps {
				if cfgRng.Float64() < 0.5 {
					eps[i] = shift
				}
			}
			h00, h01 = unfold.SupercellChain(eps, hop)
			states, err = unfold.Unfold(h00, h01, nCells, 1, a, genericK)
			if err != nil {
				log.Fatal(err)
			}
			for _, st := range states {
				_, w := st.DominantK()
				acc += w / float64(len(states)*nCfg)
			}
		}
		bar := int(math.Round(acc * 40))
		fmt.Printf("  %.1f      %.3f  %s\n", shift, acc, strings.Repeat("#", bar))
	}
}
