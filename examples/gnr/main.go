// Graphene nanoribbon devices: armchair-ribbon band-gap engineering and a
// gated GNR switch — the 2-D-material workload of the evaluation (F7).
// The example reproduces the three armchair families (metallic-ish N=3p+2
// vs semiconducting widths), prints conductance quantization steps, and
// runs a short self-consistent gate sweep on a 7-AGNR channel.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/transport"
)

func main() {
	// 1. Band-gap versus ribbon width: the hallmark AGNR family pattern.
	fmt.Println("armchair GNR families (pz model):")
	fmt.Println("  N     family   Eg(eV)")
	for _, n := range []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13} {
		sim, err := core.New(device.Description{
			Name: fmt.Sprintf("AGNR-%d", n), Kind: device.ArmchairGNR,
			CellsX: 4, CellsY: n,
		}, transport.Config{})
		if err != nil {
			log.Fatal(err)
		}
		family := "semiconducting"
		if n%3 == 2 {
			family = "quasi-metallic"
		}
		gap := 0.0
		if ev, ec, err := sim.ConductionBandEdge(-1.5, 1.5); err == nil {
			gap = ec - ev
		}
		fmt.Printf("  %-2d    %-14s %.3f\n", n, family, gap)
	}

	// 2. Conductance quantization of a clean 7-AGNR: T(E) climbs in
	//    integer steps as subbands open.
	sim, err := core.New(device.Description{
		Name: "AGNR-7", Kind: device.ArmchairGNR, CellsX: 16, CellsY: 7,
	}, transport.Config{})
	if err != nil {
		log.Fatal(err)
	}
	_, ec, err := sim.ConductionBandEdge(-1.5, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n7-AGNR conduction steps (Ec = %.3f eV):\n  E-Ec(eV)  T(E)\n", ec)
	grid := transport.UniformGrid(ec-0.05, ec+2.0, 12)
	ts, err := sim.Transmission(context.Background(), grid, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range grid {
		fmt.Printf("  %+.3f    %.4f\n", e-ec, ts[i])
	}

	// 3. A gated 7-AGNR switch: short self-consistent transfer curve.
	simFET, err := core.New(device.Description{
		Name: "AGNR-7 switch", Kind: device.ArmchairGNR, CellsX: 20, CellsY: 7,
	}, transport.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fet, err := core.NewFET(simFET)
	if err != nil {
		log.Fatal(err)
	}
	fet.Lambda = 1.2
	fet.SourceDoping = 0.1
	fet.GateStart, fet.GateEnd = 0.3, 0.7
	fet.NE = 120
	fmt.Println("\ngated 7-AGNR at Vd = 0.2 V:")
	fmt.Println("  Vg(V)    Id(A)")
	points, err := fet.GateSweep(context.Background(), []float64{-0.4, -0.1, 0.2, 0.5}, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("  %+.2f    %.4e\n", p.VGate, p.Current)
	}
	fmt.Printf("on/off: %.0fx\n", points[len(points)-1].Current/points[0].Current)
}
