// Quickstart: build a silicon nanowire, inspect it, compute its lead band
// structure and ballistic transmission, and cross-check the two quantum
// transport formalisms against each other — a five-minute tour of the
// public API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/transport"
)

func main() {
	// 1. Describe and build a device: a [100] silicon nanowire, 8
	//    conventional cells long, 1×1 cells of cross-section, with the
	//    5-orbital sp3s* tight-binding model and surface passivation.
	desc := device.Description{
		Name: "quickstart Si nanowire", Kind: device.SiNanowire,
		CellsX: 8, CellsY: 2, CellsZ: 1,
	}
	sim, err := core.New(desc, transport.Config{Formalism: transport.WaveFunction})
	if err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("device: %s\n", st.Name)
	fmt.Printf("  %d atoms in %d layers, %d orbitals/atom → matrix order %d (blocks of %d)\n",
		st.Atoms, st.Layers, st.OrbitalsAtom, st.MatrixOrder, st.BlockSize)

	// 2. Lead band structure and the transport gap.
	ev, ec, err := sim.ConductionBandEdge(-2, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  transport gap: Ev = %.3f eV, Ec = %.3f eV (Eg = %.3f eV)\n", ev, ec, ec-ev)

	// 3. Ballistic transmission through the clean wire: integer plateaus
	//    equal to the number of propagating lead modes.
	energies := transport.UniformGrid(ec-0.08, ec+0.32, 11)
	ts, err := sim.Transmission(context.Background(), energies, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  E-Ec(eV)   T(E)")
	for i, e := range energies {
		fmt.Printf("  %+.3f     %.4f\n", e-ec, ts[i])
	}

	// 4. Cross-check: the NEGF (recursive Green's function) baseline must
	//    agree with the wave-function solver to solver precision.
	simNEGF, err := core.New(desc, transport.Config{Formalism: transport.NEGFRGF})
	if err != nil {
		log.Fatal(err)
	}
	tsRef, err := simNEGF.Transmission(context.Background(), []float64{ec + 0.2}, nil)
	if err != nil {
		log.Fatal(err)
	}
	tsWF, err := sim.Transmission(context.Background(), []float64{ec + 0.2}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-check at Ec+0.2 eV: WF T = %.10f, NEGF T = %.10f (|Δ| = %.2g)\n",
		tsWF[0], tsRef[0], abs(tsWF[0]-tsRef[0]))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
