// Alloy disorder: random-alloy transport in the tradition of the paper's
// research lineage (SiGe nanowires, alloyed quantum dots). The example
// compares the virtual-crystal approximation against configuration-
// averaged random alloys on a single-band wire, then extracts the
// localization length from the exponential decay of ⟨ln T⟩ with device
// length — the physics that makes atomistic (rather than mean-field)
// simulation necessary.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/alloy"
	"repro/internal/lattice"
	"repro/internal/tb"
	"repro/internal/transport"
)

// transmission computes T(E) for a chain with the given site potential.
func transmission(s *lattice.Structure, pot []float64, e float64) (float64, error) {
	h, err := tb.Assemble(s, tb.SingleBandChain(0, -1), tb.Options{Potential: pot})
	if err != nil {
		return 0, err
	}
	eng, err := transport.NewEngine(h, transport.Config{})
	if err != nil {
		return 0, err
	}
	ts, err := eng.Transmissions(context.Background(), []float64{e})
	if err != nil {
		return 0, err
	}
	return ts[0], nil
}

func main() {
	const (
		e       = -0.3 // probe energy inside the band
		nConfig = 24
	)
	d := alloy.Disorder{Fraction: 0.5, Shift: 0.6}

	// 1. VCA vs random alloy at fixed length.
	s, err := lattice.NewLinearChain(0.5, 40)
	if err != nil {
		log.Fatal(err)
	}
	vcaT, err := transmission(s, d.VCA(s), e)
	if err != nil {
		log.Fatal(err)
	}
	mean, sem, err := alloy.Average(nConfig, 42, func(rng *rand.Rand) (float64, error) {
		pot, err := d.Sample(s, rng)
		if err != nil {
			return 0, err
		}
		return transmission(s, pot, e)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A0.5B0.5 alloy chain, 40 sites, ΔE = %.1f eV, E = %.1f eV:\n", d.Shift, e)
	fmt.Printf("  virtual crystal:  T = %.4f (mean-field, scattering-free)\n", vcaT)
	fmt.Printf("  random alloy:     ⟨T⟩ = %.4f ± %.4f over %d configurations\n", mean, sem, nConfig)
	fmt.Printf("  VCA overestimates conductance by %.1fx — alloy scattering is real\n", vcaT/mean)

	// 2. Localization: ⟨ln T⟩ vs length.
	fmt.Println("\nlocalization analysis (⟨ln T⟩ vs length):")
	fmt.Println("  L(nm)    ⟨ln T⟩")
	lengths := []int{16, 24, 32, 40, 48}
	xs := make([]float64, len(lengths))
	ys := make([]float64, len(lengths))
	for i, n := range lengths {
		sl, err := lattice.NewLinearChain(0.5, n)
		if err != nil {
			log.Fatal(err)
		}
		m, _, err := alloy.Average(nConfig, 7, func(rng *rand.Rand) (float64, error) {
			pot, err := d.Sample(sl, rng)
			if err != nil {
				return 0, err
			}
			T, err := transmission(sl, pot, e)
			if err != nil {
				return 0, err
			}
			return math.Log(math.Max(T, 1e-300)), nil
		})
		if err != nil {
			log.Fatal(err)
		}
		xs[i] = float64(n) * 0.5
		ys[i] = m
		fmt.Printf("  %5.1f    %.3f\n", xs[i], m)
	}
	xi, ok := alloy.LocalizationFit(xs, ys)
	if !ok {
		log.Fatal("no exponential decay found")
	}
	fmt.Printf("fitted localization length: ξ = %.1f nm\n", xi)

	// 3. Disorder-strength sweep.
	fmt.Println("\nlocalization length vs alloy splitting (32-site chain reference):")
	fmt.Println("  ΔE(eV)   ⟨T⟩")
	for _, shift := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		dd := alloy.Disorder{Fraction: 0.5, Shift: shift}
		m, _, err := alloy.Average(nConfig, 13, func(rng *rand.Rand) (float64, error) {
			pot, err := dd.Sample(s, rng)
			if err != nil {
				return 0, err
			}
			return transmission(s, pot, e)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.1f      %.4f\n", shift, m)
	}
}
