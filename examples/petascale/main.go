// Petascale: reproduce the paper's headline — sustained petaflop-class
// performance on 221,400 Cray XT5 cores — with the calibrated machine
// model, anchored to kernel costs measured on this machine.
//
// The example (1) measures the true flop count of one open-boundary solve
// on a real (small) device with the library's exact flop accounting,
// (2) checks it against the analytic workload model the scheduler uses,
// and (3) runs the four-level strong-scaling study up to full machine
// size, printing the modeled sustained performance curve.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/transport"
)

func main() {
	// 1. Calibration: measure one wave-function solve on a real device.
	desc := device.Description{
		Name: "calibration wire", Kind: device.SiNanowire,
		CellsX: 10, CellsY: 1, CellsZ: 1,
	}
	sim, err := core.New(desc, transport.Config{Formalism: transport.WaveFunction})
	if err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	_, ec, err := sim.ConductionBandEdge(-2, 6)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	measured, err := cluster.CalibrateBlockSolve(func() error {
		_, err := sim.Transmission(context.Background(), []float64{ec + 0.3}, nil)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	localRate := float64(measured) / elapsed.Seconds()
	fmt.Printf("calibration device: %d layers × %d orbitals/layer\n", st.Layers, st.BlockSize)
	fmt.Printf("measured: %.3g flops per energy point in %s → %.2f GFlop/s on this core\n",
		float64(measured), elapsed.Round(time.Millisecond), localRate/1e9)

	w := cluster.Workload{
		NBias: 1, NK: 1, NE: 1,
		NLayers: st.Layers, BlockSize: st.BlockSize, RHSWidth: st.BlockSize,
		SelfEnergyIterations: 30,
	}
	analytic := w.SelfEnergyFlops() + w.WFSolveFlops()
	fmt.Printf("analytic model: %.3g flops per energy point (%.1fx of measured)\n",
		float64(analytic), float64(analytic)/float64(measured))

	// 2. The flagship workload at Jaguar scale.
	flagship := cluster.Workload{
		NBias: 16, NK: 21, NE: 1316,
		NLayers: 140, BlockSize: 480, RHSWidth: 480,
		SelfEnergyIterations: 30,
		EnergyCostCV:         0.1,
		CouplingRank:         120,
	}
	m := cluster.Jaguar()
	fmt.Printf("\nflagship workload: %d independent solves on a %d-layer, %d-orbital/layer device\n",
		flagship.Tasks(), flagship.NLayers, flagship.BlockSize)
	fmt.Printf("useful work: %.3g flops per sweep\n", float64(flagship.UsefulFlops()))

	fmt.Printf("\nstrong scaling on %s (4-level decomposition):\n", m.Name)
	fmt.Println("  cores     wall(s)   TFlop/s   efficiency")
	counts := []int{1344, 5376, 21504, 86016, 172032, 221400}
	reports, err := m.StrongScaling(flagship, counts)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("  %-9d %-9.1f %-9.1f %.3f\n",
			r.CoresUsed, r.WallTime, r.SustainedFlops/1e12, r.Efficiency)
	}
	last := reports[len(reports)-1]
	fmt.Printf("\nheadline: %.2f PFlop/s sustained on %d cores (%s)\n",
		last.SustainedFlops/1e15, last.CoresUsed, last.Decomposition)
	fmt.Println("paper reference: 1.44 PFlop/s on 221,400 cores — same petaflop class;")
	fmt.Println("see EXPERIMENTS.md for the shape-level comparison methodology.")
}
